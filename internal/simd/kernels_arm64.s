//go:build arm64 && !purego

// NEON (AdvSIMD) micro-kernels for the float64 dispatch table. The Go
// arm64 assembler exposes VFMLA but no vector FADD/FMUL, so the two
// non-FMA kernels are expressed as FMAs that are bit-identical to the
// plain ops: dst = a⊙b is FMLA into a zeroed register (a*b is rounded
// once either way) and dst += a is FMLA with a vector of ones (a*1 is
// exact). Dot reductions merge accumulator vectors with a
// ones-multiply FMLA (again exact), then fold lanes with a scalar
// FADDD before the tail — the same accumulator-then-tail order as the
// scalar and AVX2 kernels.
//
// VLD1/VST1 have no immediate-offset form, so every loop advances its
// pointers with post-increment addressing; lengths count down in R2.

#include "textflag.h"

// func axpyNEON(c, a []float64, w float64)
TEXT ·axpyNEON(SB), NOSPLIT, $0-56
	MOVD  c_base+0(FP), R0
	MOVD  a_base+24(FP), R1
	MOVD  c_len+8(FP), R2
	FMOVD w+48(FP), F8
	VDUP  V8.D[0], V8.D2

axpy_loop4:
	CMP    $4, R2
	BLT    axpy_loop2
	VLD1   (R0), [V1.D2, V2.D2]
	VLD1.P 32(R1), [V3.D2, V4.D2]
	VFMLA  V8.D2, V3.D2, V1.D2
	VFMLA  V8.D2, V4.D2, V2.D2
	VST1.P [V1.D2, V2.D2], 32(R0)
	SUB    $4, R2
	B      axpy_loop4

axpy_loop2:
	CMP    $2, R2
	BLT    axpy_tail
	VLD1   (R0), [V1.D2]
	VLD1.P 16(R1), [V3.D2]
	VFMLA  V8.D2, V3.D2, V1.D2
	VST1.P [V1.D2], 16(R0)
	SUB    $2, R2
	B      axpy_loop2

axpy_tail:
	CBZ    R2, axpy_done
	FMOVD  (R0), F1
	FMOVD  (R1), F3
	FMADDD F8, F1, F3, F1
	FMOVD  F1, (R0)
	ADD    $8, R0
	ADD    $8, R1
	SUB    $1, R2
	B      axpy_tail

axpy_done:
	RET

// func axpy2NEON(o, p, d, l []float64, v float64)
TEXT ·axpy2NEON(SB), NOSPLIT, $0-104
	MOVD  o_base+0(FP), R0
	MOVD  p_base+24(FP), R1
	MOVD  d_base+48(FP), R3
	MOVD  l_base+72(FP), R4
	MOVD  o_len+8(FP), R2
	FMOVD v+96(FP), F8
	VDUP  V8.D[0], V8.D2

axpy2_loop2:
	CMP    $2, R2
	BLT    axpy2_tail
	VLD1   (R0), [V1.D2]
	VLD1.P 16(R1), [V2.D2]
	VLD1   (R3), [V3.D2]
	VLD1.P 16(R4), [V4.D2]
	VFMLA  V8.D2, V2.D2, V1.D2
	VFMLA  V8.D2, V4.D2, V3.D2
	VST1.P [V1.D2], 16(R0)
	VST1.P [V3.D2], 16(R3)
	SUB    $2, R2
	B      axpy2_loop2

axpy2_tail:
	CBZ    R2, axpy2_done
	FMOVD  (R0), F1
	FMOVD  (R1), F2
	FMOVD  (R3), F3
	FMOVD  (R4), F4
	FMADDD F8, F1, F2, F1
	FMADDD F8, F3, F4, F3
	FMOVD  F1, (R0)
	FMOVD  F3, (R3)
	ADD    $8, R0
	ADD    $8, R1
	ADD    $8, R3
	ADD    $8, R4
	SUB    $1, R2
	B      axpy2_tail

axpy2_done:
	RET

// func axpy4x1NEON(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64)
TEXT ·axpy4x1NEON(SB), NOSPLIT, $0-152
	MOVD  c0_base+0(FP), R0
	MOVD  c1_base+24(FP), R3
	MOVD  c2_base+48(FP), R4
	MOVD  c3_base+72(FP), R5
	MOVD  a_base+96(FP), R1
	MOVD  c0_len+8(FP), R2
	FMOVD w0+120(FP), F8
	FMOVD w1+128(FP), F9
	FMOVD w2+136(FP), F10
	FMOVD w3+144(FP), F11
	VDUP  V8.D[0], V8.D2
	VDUP  V9.D[0], V9.D2
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2

a4x1_loop2:
	CMP    $2, R2
	BLT    a4x1_tail
	VLD1.P 16(R1), [V0.D2]
	VLD1   (R0), [V1.D2]
	VLD1   (R3), [V2.D2]
	VLD1   (R4), [V3.D2]
	VLD1   (R5), [V4.D2]
	VFMLA  V8.D2, V0.D2, V1.D2
	VFMLA  V9.D2, V0.D2, V2.D2
	VFMLA  V10.D2, V0.D2, V3.D2
	VFMLA  V11.D2, V0.D2, V4.D2
	VST1.P [V1.D2], 16(R0)
	VST1.P [V2.D2], 16(R3)
	VST1.P [V3.D2], 16(R4)
	VST1.P [V4.D2], 16(R5)
	SUB    $2, R2
	B      a4x1_loop2

a4x1_tail:
	CBZ    R2, a4x1_done
	FMOVD  (R1), F0
	FMOVD  (R0), F1
	FMOVD  (R3), F2
	FMOVD  (R4), F3
	FMOVD  (R5), F4
	FMADDD F8, F1, F0, F1
	FMADDD F9, F2, F0, F2
	FMADDD F10, F3, F0, F3
	FMADDD F11, F4, F0, F4
	FMOVD  F1, (R0)
	FMOVD  F2, (R3)
	FMOVD  F3, (R4)
	FMOVD  F4, (R5)
	ADD    $8, R0
	ADD    $8, R1
	ADD    $8, R3
	ADD    $8, R4
	ADD    $8, R5
	SUB    $1, R2
	B      a4x1_tail

a4x1_done:
	RET

// func axpy1x4NEON(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64)
TEXT ·axpy1x4NEON(SB), NOSPLIT, $0-152
	MOVD  c_base+0(FP), R0
	MOVD  a0_base+24(FP), R3
	MOVD  a1_base+48(FP), R4
	MOVD  a2_base+72(FP), R5
	MOVD  a3_base+96(FP), R6
	MOVD  c_len+8(FP), R2
	FMOVD w0+120(FP), F8
	FMOVD w1+128(FP), F9
	FMOVD w2+136(FP), F10
	FMOVD w3+144(FP), F11
	VDUP  V8.D[0], V8.D2
	VDUP  V9.D[0], V9.D2
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2

a1x4_loop2:
	CMP    $2, R2
	BLT    a1x4_tail
	VLD1   (R0), [V1.D2]
	VLD1.P 16(R3), [V2.D2]
	VLD1.P 16(R4), [V3.D2]
	VLD1.P 16(R5), [V4.D2]
	VLD1.P 16(R6), [V5.D2]
	VFMLA  V8.D2, V2.D2, V1.D2
	VFMLA  V9.D2, V3.D2, V1.D2
	VFMLA  V10.D2, V4.D2, V1.D2
	VFMLA  V11.D2, V5.D2, V1.D2
	VST1.P [V1.D2], 16(R0)
	SUB    $2, R2
	B      a1x4_loop2

a1x4_tail:
	CBZ    R2, a1x4_done
	FMOVD  (R0), F1
	FMOVD  (R3), F2
	FMOVD  (R4), F3
	FMOVD  (R5), F4
	FMOVD  (R6), F5
	FMADDD F8, F1, F2, F1
	FMADDD F9, F1, F3, F1
	FMADDD F10, F1, F4, F1
	FMADDD F11, F1, F5, F1
	FMOVD  F1, (R0)
	ADD    $8, R0
	ADD    $8, R3
	ADD    $8, R4
	ADD    $8, R5
	ADD    $8, R6
	SUB    $1, R2
	B      a1x4_tail

a1x4_done:
	RET

// func axpy4x4NEON(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
//	w00, ..., w33 float64)
// All 16 broadcast weights fit in V8–V23 — one pass, unlike the
// two-pass AVX2 layout.
TEXT ·axpy4x4NEON(SB), NOSPLIT, $0-320
	MOVD  c0_base+0(FP), R0
	MOVD  c1_base+24(FP), R3
	MOVD  c2_base+48(FP), R4
	MOVD  c3_base+72(FP), R5
	MOVD  a0_base+96(FP), R6
	MOVD  a1_base+120(FP), R7
	MOVD  a2_base+144(FP), R8
	MOVD  a3_base+168(FP), R9
	MOVD  c0_len+8(FP), R2
	FMOVD w00+192(FP), F8
	FMOVD w01+200(FP), F9
	FMOVD w02+208(FP), F10
	FMOVD w03+216(FP), F11
	FMOVD w10+224(FP), F12
	FMOVD w11+232(FP), F13
	FMOVD w12+240(FP), F14
	FMOVD w13+248(FP), F15
	FMOVD w20+256(FP), F16
	FMOVD w21+264(FP), F17
	FMOVD w22+272(FP), F18
	FMOVD w23+280(FP), F19
	FMOVD w30+288(FP), F20
	FMOVD w31+296(FP), F21
	FMOVD w32+304(FP), F22
	FMOVD w33+312(FP), F23
	VDUP  V8.D[0], V8.D2
	VDUP  V9.D[0], V9.D2
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VDUP  V12.D[0], V12.D2
	VDUP  V13.D[0], V13.D2
	VDUP  V14.D[0], V14.D2
	VDUP  V15.D[0], V15.D2
	VDUP  V16.D[0], V16.D2
	VDUP  V17.D[0], V17.D2
	VDUP  V18.D[0], V18.D2
	VDUP  V19.D[0], V19.D2
	VDUP  V20.D[0], V20.D2
	VDUP  V21.D[0], V21.D2
	VDUP  V22.D[0], V22.D2
	VDUP  V23.D[0], V23.D2

a4x4_loop2:
	CMP    $2, R2
	BLT    a4x4_tail
	VLD1.P 16(R6), [V0.D2]
	VLD1.P 16(R7), [V1.D2]
	VLD1.P 16(R8), [V2.D2]
	VLD1.P 16(R9), [V3.D2]
	VLD1   (R0), [V4.D2]
	VFMLA  V8.D2, V0.D2, V4.D2
	VFMLA  V9.D2, V1.D2, V4.D2
	VFMLA  V10.D2, V2.D2, V4.D2
	VFMLA  V11.D2, V3.D2, V4.D2
	VST1.P [V4.D2], 16(R0)
	VLD1   (R3), [V5.D2]
	VFMLA  V12.D2, V0.D2, V5.D2
	VFMLA  V13.D2, V1.D2, V5.D2
	VFMLA  V14.D2, V2.D2, V5.D2
	VFMLA  V15.D2, V3.D2, V5.D2
	VST1.P [V5.D2], 16(R3)
	VLD1   (R4), [V6.D2]
	VFMLA  V16.D2, V0.D2, V6.D2
	VFMLA  V17.D2, V1.D2, V6.D2
	VFMLA  V18.D2, V2.D2, V6.D2
	VFMLA  V19.D2, V3.D2, V6.D2
	VST1.P [V6.D2], 16(R4)
	VLD1   (R5), [V7.D2]
	VFMLA  V20.D2, V0.D2, V7.D2
	VFMLA  V21.D2, V1.D2, V7.D2
	VFMLA  V22.D2, V2.D2, V7.D2
	VFMLA  V23.D2, V3.D2, V7.D2
	VST1.P [V7.D2], 16(R5)
	SUB    $2, R2
	B      a4x4_loop2

	// Scalar tail: the dup'd weight vectors still hold w in lane 0,
	// so F8–F23 read them directly.
a4x4_tail:
	CBZ    R2, a4x4_done
	FMOVD  (R6), F0
	FMOVD  (R7), F1
	FMOVD  (R8), F2
	FMOVD  (R9), F3
	FMOVD  (R0), F4
	FMADDD F8, F4, F0, F4
	FMADDD F9, F4, F1, F4
	FMADDD F10, F4, F2, F4
	FMADDD F11, F4, F3, F4
	FMOVD  F4, (R0)
	FMOVD  (R3), F4
	FMADDD F12, F4, F0, F4
	FMADDD F13, F4, F1, F4
	FMADDD F14, F4, F2, F4
	FMADDD F15, F4, F3, F4
	FMOVD  F4, (R3)
	FMOVD  (R4), F4
	FMADDD F16, F4, F0, F4
	FMADDD F17, F4, F1, F4
	FMADDD F18, F4, F2, F4
	FMADDD F19, F4, F3, F4
	FMOVD  F4, (R4)
	FMOVD  (R5), F4
	FMADDD F20, F4, F0, F4
	FMADDD F21, F4, F1, F4
	FMADDD F22, F4, F2, F4
	FMADDD F23, F4, F3, F4
	FMOVD  F4, (R5)
	ADD    $8, R0
	ADD    $8, R3
	ADD    $8, R4
	ADD    $8, R5
	ADD    $8, R6
	ADD    $8, R7
	ADD    $8, R8
	ADD    $8, R9
	SUB    $1, R2
	B      a4x4_tail

a4x4_done:
	RET

// func dotNEON(x, y []float64) float64
TEXT ·dotNEON(SB), NOSPLIT, $0-56
	MOVD  x_base+0(FP), R0
	MOVD  y_base+24(FP), R1
	MOVD  x_len+8(FP), R2
	VEOR  V0.B16, V0.B16, V0.B16
	VEOR  V1.B16, V1.B16, V1.B16
	FMOVD $1.0, F9
	VDUP  V9.D[0], V9.D2

dot_loop4:
	CMP    $4, R2
	BLT    dot_loop2
	VLD1.P 32(R0), [V2.D2, V3.D2]
	VLD1.P 32(R1), [V4.D2, V5.D2]
	VFMLA  V2.D2, V4.D2, V0.D2
	VFMLA  V3.D2, V5.D2, V1.D2
	SUB    $4, R2
	B      dot_loop4

dot_loop2:
	CMP    $2, R2
	BLT    dot_reduce
	VLD1.P 16(R0), [V2.D2]
	VLD1.P 16(R1), [V4.D2]
	VFMLA  V2.D2, V4.D2, V0.D2
	SUB    $2, R2
	B      dot_loop2

dot_reduce:
	// V0 += 1.0*V1 (exact add), then fold lanes before the tail.
	VFMLA V9.D2, V1.D2, V0.D2
	VMOV  V0.D[1], R3
	FMOVD R3, F1
	FADDD F1, F0, F0

dot_tail:
	CBZ    R2, dot_done
	FMOVD  (R0), F2
	FMOVD  (R1), F3
	FMADDD F2, F0, F3, F0
	ADD    $8, R0
	ADD    $8, R1
	SUB    $1, R2
	B      dot_tail

dot_done:
	FMOVD F0, ret+48(FP)
	RET

// func dot4NEON(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64)
TEXT ·dot4NEON(SB), NOSPLIT, $0-152
	MOVD x_base+0(FP), R0
	MOVD y0_base+24(FP), R1
	MOVD y1_base+48(FP), R3
	MOVD y2_base+72(FP), R4
	MOVD y3_base+96(FP), R5
	MOVD x_len+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16

dot4_loop2:
	CMP    $2, R2
	BLT    dot4_reduce
	VLD1.P 16(R0), [V4.D2]
	VLD1.P 16(R1), [V5.D2]
	VLD1.P 16(R3), [V6.D2]
	VLD1.P 16(R4), [V7.D2]
	VLD1.P 16(R5), [V8.D2]
	VFMLA  V4.D2, V5.D2, V0.D2
	VFMLA  V4.D2, V6.D2, V1.D2
	VFMLA  V4.D2, V7.D2, V2.D2
	VFMLA  V4.D2, V8.D2, V3.D2
	SUB    $2, R2
	B      dot4_loop2

dot4_reduce:
	VMOV  V0.D[1], R6
	FMOVD R6, F4
	FADDD F4, F0, F0
	VMOV  V1.D[1], R6
	FMOVD R6, F4
	FADDD F4, F1, F1
	VMOV  V2.D[1], R6
	FMOVD R6, F4
	FADDD F4, F2, F2
	VMOV  V3.D[1], R6
	FMOVD R6, F4
	FADDD F4, F3, F3

dot4_tail:
	CBZ    R2, dot4_done
	FMOVD  (R0), F4
	FMOVD  (R1), F5
	FMOVD  (R3), F6
	FMOVD  (R4), F7
	FMOVD  (R5), F8
	FMADDD F4, F0, F5, F0
	FMADDD F4, F1, F6, F1
	FMADDD F4, F2, F7, F2
	FMADDD F4, F3, F8, F3
	ADD    $8, R0
	ADD    $8, R1
	ADD    $8, R3
	ADD    $8, R4
	ADD    $8, R5
	SUB    $1, R2
	B      dot4_tail

dot4_done:
	FMOVD F0, s0+120(FP)
	FMOVD F1, s1+128(FP)
	FMOVD F2, s2+136(FP)
	FMOVD F3, s3+144(FP)
	RET

// func mulNEON(dst, a, b []float64)
// dst = a⊙b via FMLA into a zeroed register: fma(a,b,0) rounds a*b
// once, exactly like FMULD (modulo the sign of a -0 product, which no
// consumer distinguishes).
TEXT ·mulNEON(SB), NOSPLIT, $0-72
	MOVD dst_base+0(FP), R0
	MOVD a_base+24(FP), R1
	MOVD b_base+48(FP), R3
	MOVD dst_len+8(FP), R2

mul_loop2:
	CMP    $2, R2
	BLT    mul_tail
	VEOR   V1.B16, V1.B16, V1.B16
	VLD1.P 16(R1), [V2.D2]
	VLD1.P 16(R3), [V3.D2]
	VFMLA  V2.D2, V3.D2, V1.D2
	VST1.P [V1.D2], 16(R0)
	SUB    $2, R2
	B      mul_loop2

mul_tail:
	CBZ   R2, mul_done
	FMOVD (R1), F2
	FMOVD (R3), F3
	FMULD F2, F3, F1
	FMOVD F1, (R0)
	ADD   $8, R0
	ADD   $8, R1
	ADD   $8, R3
	SUB   $1, R2
	B     mul_tail

mul_done:
	RET

// func muladdNEON(dst, a, b []float64)
TEXT ·muladdNEON(SB), NOSPLIT, $0-72
	MOVD dst_base+0(FP), R0
	MOVD a_base+24(FP), R1
	MOVD b_base+48(FP), R3
	MOVD dst_len+8(FP), R2

muladd_loop2:
	CMP    $2, R2
	BLT    muladd_tail
	VLD1   (R0), [V1.D2]
	VLD1.P 16(R1), [V2.D2]
	VLD1.P 16(R3), [V3.D2]
	VFMLA  V2.D2, V3.D2, V1.D2
	VST1.P [V1.D2], 16(R0)
	SUB    $2, R2
	B      muladd_loop2

muladd_tail:
	CBZ    R2, muladd_done
	FMOVD  (R0), F1
	FMOVD  (R1), F2
	FMOVD  (R3), F3
	FMADDD F2, F1, F3, F1
	FMOVD  F1, (R0)
	ADD    $8, R0
	ADD    $8, R1
	ADD    $8, R3
	SUB    $1, R2
	B      muladd_tail

muladd_done:
	RET

// func addNEON(dst, a []float64)
// dst += a via FMLA with a vector of ones: fma(a,1,dst) rounds
// dst + a once, exactly like FADDD.
TEXT ·addNEON(SB), NOSPLIT, $0-48
	MOVD  dst_base+0(FP), R0
	MOVD  a_base+24(FP), R1
	MOVD  dst_len+8(FP), R2
	FMOVD $1.0, F8
	VDUP  V8.D[0], V8.D2

add_loop2:
	CMP    $2, R2
	BLT    add_tail
	VLD1   (R0), [V1.D2]
	VLD1.P 16(R1), [V2.D2]
	VFMLA  V8.D2, V2.D2, V1.D2
	VST1.P [V1.D2], 16(R0)
	SUB    $2, R2
	B      add_loop2

add_tail:
	CBZ   R2, add_done
	FMOVD (R0), F1
	FMOVD (R1), F2
	FADDD F2, F1, F1
	FMOVD F1, (R0)
	ADD   $8, R0
	ADD   $8, R1
	SUB   $1, R2
	B     add_tail

add_done:
	RET
