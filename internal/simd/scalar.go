package simd

// The scalar micro-kernels: the portable dispatch fallback and the
// correctness oracle for the assembly paths. The axpy/dot bodies are
// the register-blocked loops that lived in internal/linalg before the
// dispatch layer existed, retained verbatim (same accumulation
// order), so the scalar path reproduces pre-SIMD results bitwise.

// Axpy4x4Generic is the register-blocked micro-kernel: a 4x4 tile of
// coefficients w applied to four source columns, accumulated into four
// destination columns. All eight slices have equal length.
//
//repro:hotpath
func Axpy4x4Generic(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
	w00, w01, w02, w03,
	w10, w11, w12, w13,
	w20, w21, w22, w23,
	w30, w31, w32, w33 float64) {
	n := len(c0)
	a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
	c1, c2, c3 = c1[:n], c2[:n], c3[:n]
	for i := range c0 {
		v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
		c0[i] += v0*w00 + v1*w01 + v2*w02 + v3*w03
		c1[i] += v0*w10 + v1*w11 + v2*w12 + v3*w13
		c2[i] += v0*w20 + v1*w21 + v2*w22 + v3*w23
		c3[i] += v0*w30 + v1*w31 + v2*w32 + v3*w33
	}
}

// Axpy4x1Generic accumulates one source column into four destinations.
//
//repro:hotpath
func Axpy4x1Generic(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64) {
	n := len(c0)
	a = a[:n]
	c1, c2, c3 = c1[:n], c2[:n], c3[:n]
	for i, v := range a {
		c0[i] += v * w0
		c1[i] += v * w1
		c2[i] += v * w2
		c3[i] += v * w3
	}
}

// Axpy1x4Generic accumulates four source columns into one destination.
//
//repro:hotpath
func Axpy1x4Generic(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64) {
	n := len(c)
	a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
	for i := range c {
		c[i] += a0[i]*w0 + a1[i]*w1 + a2[i]*w2 + a3[i]*w3
	}
}

// AxpyGeneric accumulates c += a * w.
//
//repro:hotpath
func AxpyGeneric(c, a []float64, w float64) {
	a = a[:len(c)]
	for i := range c {
		c[i] += a[i] * w
	}
}

// Axpy2Generic is the fused CSF all-modes leaf update: one leaf value
// v scales the path prefix p into the output row o and the leaf
// factor row l into the subtree sum d, in one pass.
//
//repro:hotpath
func Axpy2Generic(o, p, d, l []float64, v float64) {
	n := len(o)
	p, l = p[:n], l[:n]
	d = d[:n]
	for i := range o {
		o[i] += v * p[i]
		d[i] += v * l[i]
	}
}

// DotGeneric is a four-accumulator dot product. The unrolled body
// reduces as (s0+s1)+(s2+s3) and the tail then folds into the reduced
// sum — the same accumulator order as the vector kernels, which
// reduce their lane accumulators before the scalar tail.
//
//repro:hotpath
func DotGeneric(x, y []float64) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Dot4Generic computes four dot products sharing one x stream.
//
//repro:hotpath
func Dot4Generic(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64) {
	n := len(x)
	y0, y1, y2, y3 = y0[:n], y1[:n], y2[:n], y3[:n]
	for i, v := range x {
		s0 += v * y0[i]
		s1 += v * y1[i]
		s2 += v * y2[i]
		s3 += v * y3[i]
	}
	return
}

// MulGeneric writes the elementwise product dst = a ⊙ b (the CSF
// prefix-Hadamard step).
//
//repro:hotpath
func MulGeneric(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// MulAddGeneric accumulates the elementwise product dst += a ⊙ b (the
// CSF row update).
//
//repro:hotpath
func MulAddGeneric(dst, a, b []float64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	for i := range dst {
		dst[i] += a[i] * b[i]
	}
}

// AddGeneric accumulates dst += a.
//
//repro:hotpath
func AddGeneric(dst, a []float64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] += a[i]
	}
}

// AxpyF32Generic accumulates c += a * w with a float32 source stream
// and float64 accumulation.
//
//repro:hotpath
func AxpyF32Generic(c []float64, a []float32, w float64) {
	a = a[:len(c)]
	for i := range c {
		c[i] += float64(a[i]) * w
	}
}

// Axpy1x4F32Generic accumulates four float32 source columns into one
// float64 destination.
//
//repro:hotpath
func Axpy1x4F32Generic(c []float64, a0, a1, a2, a3 []float32, w0, w1, w2, w3 float64) {
	n := len(c)
	a0, a1, a2, a3 = a0[:n], a1[:n], a2[:n], a3[:n]
	for i := range c {
		c[i] += float64(a0[i])*w0 + float64(a1[i])*w1 + float64(a2[i])*w2 + float64(a3[i])*w3
	}
}

// DotF32Generic is the mixed-precision dot: float32 x stream, float64
// y stream, float64 accumulators, same reduction order as DotGeneric.
//
//repro:hotpath
func DotF32Generic(x []float32, y []float64) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += float64(x[i]) * y[i]
		s1 += float64(x[i+1]) * y[i+1]
		s2 += float64(x[i+2]) * y[i+2]
		s3 += float64(x[i+3]) * y[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += float64(x[i]) * y[i]
	}
	return s
}

// Dot4F32Generic computes four mixed-precision dots sharing one
// float32 x stream.
//
//repro:hotpath
func Dot4F32Generic(x []float32, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64) {
	n := len(x)
	y0, y1, y2, y3 = y0[:n], y1[:n], y2[:n], y3[:n]
	for i, v := range x {
		vf := float64(v)
		s0 += vf * y0[i]
		s1 += vf * y1[i]
		s2 += vf * y2[i]
		s3 += vf * y3[i]
	}
	return
}

// AxpyRowsGeneric is the batched CSF leaf fold: for every leaf c it
// gathers row idx[c] of the row-major packed factor pk (R = len(dst)
// words per row) and accumulates dst += vals[c] * row. One call per
// fiber replaces one Axpy call per leaf, so the per-call overhead
// amortizes over the whole fiber. The caller guarantees every
// idx[c]*R+R <= len(pk); idx and vals have equal length.
//
//repro:hotpath
func AxpyRowsGeneric(dst, pk []float64, idx []int32, vals []float64) {
	R := len(dst)
	vals = vals[:len(idx)]
	for c, ix := range idx {
		row := pk[int(ix)*R : int(ix)*R+R]
		w := vals[c]
		for r := range dst {
			dst[r] += w * row[r]
		}
	}
}

// AxpyRowsF32Generic is AxpyRowsGeneric over a float32 value stream:
// each leaf value widens exactly to float64 before the multiply, so
// the accumulation arithmetic is identical to the float64 variant fed
// the re-rounded stream.
//
//repro:hotpath
func AxpyRowsF32Generic(dst, pk []float64, idx []int32, vals []float32) {
	R := len(dst)
	vals = vals[:len(idx)]
	for c, ix := range idx {
		row := pk[int(ix)*R : int(ix)*R+R]
		w := float64(vals[c])
		for r := range dst {
			dst[r] += w * row[r]
		}
	}
}
