// Package simd is the micro-kernel dispatch layer under the blocked
// GEMM engine (internal/linalg) and the CSF sparse walk
// (internal/sparse): one set of package-level function variables,
// bound exactly once at init to the widest implementation the host
// supports — AVX2+FMA on amd64, NEON on arm64, and the portable
// scalar kernels everywhere else (and always under the purego build
// tag or REPRO_NOSIMD=1).
//
// The paper's lower bounds count words moved, so the communication
// schedule above this layer is already fixed; what SIMD buys is the
// constant factor the bounds do not see — more arithmetic per word
// while the blocking keeps the words at their floor. Every dispatch
// variable has a scalar implementation (the *Generic functions) that
// is both the portable fallback and the correctness oracle: the
// property tests pin asm-vs-scalar agreement to 1e-13 relative
// tolerance over every fringe shape.
//
// Determinism policy: dispatch is process-global and decided once, so
// a run uses one kernel set throughout — results are bitwise
// reproducible across worker counts (the engines' ReduceTree merge
// discipline is unchanged) and across repeated runs on the same
// machine and settings. FMA contraction and vector-lane reassociation
// mean the AVX2/NEON kernels round differently from the scalar ones;
// cross-path agreement is approximate (tested at 1e-13 relative), not
// bitwise. Pin REPRO_NOSIMD=1 (or build with -tags=purego) to
// reproduce scalar-path results exactly on any host.
package simd

import "os"

// The float64 dispatch table. Each variable is bound at init and
// never reassigned afterwards (tests may swap paths via ForceScalar,
// which restores on cleanup); engines call through these exactly as
// they would a direct function.
//
// Contracts (n = len of the first destination slice; callers pass
// equal-length slices, and the shims trim sources defensively):
//
//	Axpy4x4:  c_j[i] += Σ_k a_k[i] * w_jk   (4x4 register tile)
//	Axpy4x1:  c_j[i] += a[i] * w_j          (one source, four dests)
//	Axpy1x4:  c[i]   += Σ_k a_k[i] * w_k    (four sources, one dest)
//	Axpy:     c[i]   += a[i] * w
//	Axpy2:    o[i] += v*p[i]; d[i] += v*l[i] (fused CSF leaf update)
//	Dot:      Σ_i x[i]*y[i]
//	Dot4:     four dots sharing one x stream
//	Mul:      dst[i] = a[i]*b[i]            (prefix Hadamard)
//	MulAdd:   dst[i] += a[i]*b[i]           (CSF row update)
//	Add:      dst[i] += a[i]
//	AxpyRows: dst += Σ_c vals[c] * pk-row(idx[c])  (batched CSF leaf
//	          fold; the caller, not the shim, guarantees the gathered
//	          rows idx[c]*len(dst)+len(dst) lie within pk)
var (
	//repro:dispatch
	Axpy4x4 func(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
		w00, w01, w02, w03,
		w10, w11, w12, w13,
		w20, w21, w22, w23,
		w30, w31, w32, w33 float64) = Axpy4x4Generic
	//repro:dispatch
	Axpy4x1 func(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64) = Axpy4x1Generic
	//repro:dispatch
	Axpy1x4 func(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64) = Axpy1x4Generic
	//repro:dispatch
	Axpy func(c, a []float64, w float64) = AxpyGeneric
	//repro:dispatch
	Axpy2 func(o, p, d, l []float64, v float64) = Axpy2Generic
	//repro:dispatch
	Dot func(x, y []float64) float64 = DotGeneric
	//repro:dispatch
	Dot4 func(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64) = Dot4Generic
	//repro:dispatch
	Mul func(dst, a, b []float64) = MulGeneric
	//repro:dispatch
	MulAdd func(dst, a, b []float64) = MulAddGeneric
	//repro:dispatch
	Add func(dst, a []float64) = AddGeneric
	//repro:dispatch
	AxpyRows func(dst, pk []float64, idx []int32, vals []float64) = AxpyRowsGeneric
)

// The float32-operand dispatch table: the memory-bound side of the
// float32 storage path. Sources stream in float32 (half the words the
// bounds count), accumulation stays in float64 (see DESIGN.md §10).
var (
	//repro:dispatch
	AxpyF32 func(c []float64, a []float32, w float64) = AxpyF32Generic
	//repro:dispatch
	Axpy1x4F32 func(c []float64, a0, a1, a2, a3 []float32, w0, w1, w2, w3 float64) = Axpy1x4F32Generic
	//repro:dispatch
	DotF32 func(x []float32, y []float64) float64 = DotF32Generic
	//repro:dispatch
	Dot4F32 func(x []float32, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64) = Dot4F32Generic
	//repro:dispatch
	AxpyRowsF32 func(dst, pk []float64, idx []int32, vals []float32) = AxpyRowsF32Generic
)

// pathName is set by the per-arch init that installs wide kernels;
// it stays "scalar" on the portable path.
var pathName = "scalar"

// features lists the CPU features the detector saw, independent of
// whether they were used (REPRO_NOSIMD=1 detects but does not bind).
var features = ""

// Path reports which kernel set is bound: "avx2", "neon", or
// "scalar".
func Path() string { return pathName }

// Features reports the detected CPU features relevant to dispatch
// (e.g. "avx2,fma"), or "" when none were probed.
func Features() string { return features }

// Disabled reports whether the REPRO_NOSIMD=1 override forced the
// scalar path at init.
func Disabled() bool { return noSIMD() }

// Describe returns the one-line environment banner the report tools
// print: the dispatch path and the detected features.
func Describe() string {
	s := "simd=" + pathName
	if features != "" {
		s += " cpu=" + features
	}
	if noSIMD() {
		s += " (REPRO_NOSIMD=1)"
	}
	return s
}

// noSIMD reports the REPRO_NOSIMD=1 environment override. It is read
// at init by the per-arch dispatchers; Disabled re-reads it only for
// reporting.
func noSIMD() bool { return os.Getenv("REPRO_NOSIMD") == "1" }

// ForceScalar rebinds every dispatch variable to the scalar kernels
// and returns a restore function rebinding the init-time choice. Test
// helper only: swapping kernel sets while engines run concurrently is
// a race, so callers serialize around it.
func ForceScalar() (restore func()) {
	saved := [...]any{
		Axpy4x4, Axpy4x1, Axpy1x4, Axpy, Axpy2, Dot, Dot4, Mul, MulAdd, Add,
		AxpyF32, Axpy1x4F32, DotF32, Dot4F32, AxpyRows, AxpyRowsF32,
	}
	savedPath := pathName
	bindScalar()
	return func() {
		Axpy4x4 = saved[0].(func(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
			w00, w01, w02, w03, w10, w11, w12, w13,
			w20, w21, w22, w23, w30, w31, w32, w33 float64))
		Axpy4x1 = saved[1].(func(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64))
		Axpy1x4 = saved[2].(func(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64))
		Axpy = saved[3].(func(c, a []float64, w float64))
		Axpy2 = saved[4].(func(o, p, d, l []float64, v float64))
		Dot = saved[5].(func(x, y []float64) float64)
		Dot4 = saved[6].(func(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64))
		Mul = saved[7].(func(dst, a, b []float64))
		MulAdd = saved[8].(func(dst, a, b []float64))
		Add = saved[9].(func(dst, a []float64))
		AxpyF32 = saved[10].(func(c []float64, a []float32, w float64))
		Axpy1x4F32 = saved[11].(func(c []float64, a0, a1, a2, a3 []float32, w0, w1, w2, w3 float64))
		DotF32 = saved[12].(func(x []float32, y []float64) float64)
		Dot4F32 = saved[13].(func(x []float32, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64))
		AxpyRows = saved[14].(func(dst, pk []float64, idx []int32, vals []float64))
		AxpyRowsF32 = saved[15].(func(dst, pk []float64, idx []int32, vals []float32))
		pathName = savedPath
	}
}

// bindScalar points every dispatch variable at the scalar kernels.
func bindScalar() {
	Axpy4x4 = Axpy4x4Generic
	Axpy4x1 = Axpy4x1Generic
	Axpy1x4 = Axpy1x4Generic
	Axpy = AxpyGeneric
	Axpy2 = Axpy2Generic
	Dot = DotGeneric
	Dot4 = Dot4Generic
	Mul = MulGeneric
	MulAdd = MulAddGeneric
	Add = AddGeneric
	AxpyF32 = AxpyF32Generic
	Axpy1x4F32 = Axpy1x4F32Generic
	DotF32 = DotF32Generic
	Dot4F32 = Dot4F32Generic
	AxpyRows = AxpyRowsGeneric
	AxpyRowsF32 = AxpyRowsF32Generic
	pathName = "scalar"
}
