package simd

import (
	"fmt"
	"math"
	"testing"
)

// fringeLens covers the shapes the dispatch kernels must get right:
// empty, sub-vector-width, every tail residue, and the unroll
// boundaries of both the 4-wide and 16-wide loops.
var fringeLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 100}

const relTol = 1e-13

// fill writes a deterministic pseudorandom stream in [-1, 1) so every
// architecture and dispatch path tests identical inputs.
func fill(dst []float64, seed uint64) {
	s := seed*2862933555777941757 + 3037000493
	for i := range dst {
		s = s*2862933555777941757 + 3037000493
		dst[i] = float64(int64(s>>11))/float64(1<<52) - 0.5
	}
}

func fill32(dst []float32, seed uint64) {
	tmp := make([]float64, len(dst))
	fill(tmp, seed)
	for i, v := range tmp {
		dst[i] = float32(v)
	}
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= relTol*m
}

func checkSlices(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if !relClose(got[i], want[i]) {
			t.Fatalf("%s: [%d] = %g, scalar oracle %g (diff %g)",
				name, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// forEachLen runs f once per fringe length under a subtest.
func forEachLen(t *testing.T, f func(t *testing.T, n int)) {
	for _, n := range fringeLens {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) { f(t, n) })
	}
}

// The weights used by the tile kernels; values chosen to be exactly
// representable so the oracle difference isolates kernel rounding.
var w16 = [16]float64{
	0.5, -0.25, 1.25, -2, 0.75, 3, -0.125, 1,
	-1.5, 0.0625, 2.5, -0.75, 1.75, -3.25, 0.375, -1,
}

func TestAxpyAgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		a := make([]float64, n)
		fill(a, 1)
		got := make([]float64, n)
		want := make([]float64, n)
		fill(got, 2)
		copy(want, got)
		Axpy(got, a, 1.5)
		AxpyGeneric(want, a, 1.5)
		checkSlices(t, "Axpy", got, want)
	})
}

func TestAxpy2AgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		p := make([]float64, n)
		l := make([]float64, n)
		fill(p, 3)
		fill(l, 4)
		o, d := make([]float64, n), make([]float64, n)
		ow, dw := make([]float64, n), make([]float64, n)
		fill(o, 5)
		fill(d, 6)
		copy(ow, o)
		copy(dw, d)
		Axpy2(o, p, d, l, -0.75)
		Axpy2Generic(ow, p, dw, l, -0.75)
		checkSlices(t, "Axpy2 o", o, ow)
		checkSlices(t, "Axpy2 d", d, dw)
	})
}

func TestAxpy4x1AgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		a := make([]float64, n)
		fill(a, 7)
		var got, want [4][]float64
		for j := 0; j < 4; j++ {
			got[j] = make([]float64, n)
			fill(got[j], uint64(8+j))
			want[j] = append([]float64(nil), got[j]...)
		}
		Axpy4x1(got[0], got[1], got[2], got[3], a, w16[0], w16[1], w16[2], w16[3])
		Axpy4x1Generic(want[0], want[1], want[2], want[3], a, w16[0], w16[1], w16[2], w16[3])
		for j := 0; j < 4; j++ {
			checkSlices(t, fmt.Sprintf("Axpy4x1 c%d", j), got[j], want[j])
		}
	})
}

func TestAxpy1x4AgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		var a [4][]float64
		for k := 0; k < 4; k++ {
			a[k] = make([]float64, n)
			fill(a[k], uint64(12+k))
		}
		got := make([]float64, n)
		fill(got, 16)
		want := append([]float64(nil), got...)
		Axpy1x4(got, a[0], a[1], a[2], a[3], w16[4], w16[5], w16[6], w16[7])
		Axpy1x4Generic(want, a[0], a[1], a[2], a[3], w16[4], w16[5], w16[6], w16[7])
		checkSlices(t, "Axpy1x4", got, want)
	})
}

func TestAxpy4x4AgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		var a, got, want [4][]float64
		for k := 0; k < 4; k++ {
			a[k] = make([]float64, n)
			fill(a[k], uint64(17+k))
			got[k] = make([]float64, n)
			fill(got[k], uint64(21+k))
			want[k] = append([]float64(nil), got[k]...)
		}
		Axpy4x4(got[0], got[1], got[2], got[3], a[0], a[1], a[2], a[3],
			w16[0], w16[1], w16[2], w16[3], w16[4], w16[5], w16[6], w16[7],
			w16[8], w16[9], w16[10], w16[11], w16[12], w16[13], w16[14], w16[15])
		Axpy4x4Generic(want[0], want[1], want[2], want[3], a[0], a[1], a[2], a[3],
			w16[0], w16[1], w16[2], w16[3], w16[4], w16[5], w16[6], w16[7],
			w16[8], w16[9], w16[10], w16[11], w16[12], w16[13], w16[14], w16[15])
		for j := 0; j < 4; j++ {
			checkSlices(t, fmt.Sprintf("Axpy4x4 c%d", j), got[j], want[j])
		}
	})
}

func TestDotAgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		x := make([]float64, n)
		y := make([]float64, n)
		fill(x, 25)
		fill(y, 26)
		got := Dot(x, y)
		want := DotGeneric(x, y)
		if !relClose(got, want) {
			t.Fatalf("Dot = %g, scalar oracle %g", got, want)
		}
	})
}

func TestDot4AgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		x := make([]float64, n)
		fill(x, 27)
		var y [4][]float64
		for k := 0; k < 4; k++ {
			y[k] = make([]float64, n)
			fill(y[k], uint64(28+k))
		}
		g0, g1, g2, g3 := Dot4(x, y[0], y[1], y[2], y[3])
		w0, w1, w2, w3 := Dot4Generic(x, y[0], y[1], y[2], y[3])
		for j, pair := range [][2]float64{{g0, w0}, {g1, w1}, {g2, w2}, {g3, w3}} {
			if !relClose(pair[0], pair[1]) {
				t.Fatalf("Dot4 s%d = %g, scalar oracle %g", j, pair[0], pair[1])
			}
		}
	})
}

func TestMulMulAddAddAgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		a := make([]float64, n)
		b := make([]float64, n)
		fill(a, 32)
		fill(b, 33)

		got := make([]float64, n)
		want := make([]float64, n)
		fill(got, 34)
		copy(want, got)
		Mul(got, a, b)
		MulGeneric(want, a, b)
		checkSlices(t, "Mul", got, want)

		fill(got, 35)
		copy(want, got)
		MulAdd(got, a, b)
		MulAddGeneric(want, a, b)
		checkSlices(t, "MulAdd", got, want)

		fill(got, 36)
		copy(want, got)
		Add(got, a)
		AddGeneric(want, a)
		checkSlices(t, "Add", got, want)
	})
}

func TestF32KernelsAgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, n int) {
		var a [4][]float32
		for k := 0; k < 4; k++ {
			a[k] = make([]float32, n)
			fill32(a[k], uint64(40+k))
		}
		y := make([]float64, n)
		fill(y, 44)

		got := make([]float64, n)
		want := make([]float64, n)
		fill(got, 45)
		copy(want, got)
		AxpyF32(got, a[0], 1.25)
		AxpyF32Generic(want, a[0], 1.25)
		checkSlices(t, "AxpyF32", got, want)

		fill(got, 46)
		copy(want, got)
		Axpy1x4F32(got, a[0], a[1], a[2], a[3], w16[0], w16[1], w16[2], w16[3])
		Axpy1x4F32Generic(want, a[0], a[1], a[2], a[3], w16[0], w16[1], w16[2], w16[3])
		checkSlices(t, "Axpy1x4F32", got, want)

		gd := DotF32(a[0], y)
		wd := DotF32Generic(a[0], y)
		if !relClose(gd, wd) {
			t.Fatalf("DotF32 = %g, scalar oracle %g", gd, wd)
		}

		var y4 [4][]float64
		for k := 0; k < 4; k++ {
			y4[k] = make([]float64, n)
			fill(y4[k], uint64(47+k))
		}
		g0, g1, g2, g3 := Dot4F32(a[0], y4[0], y4[1], y4[2], y4[3])
		w0, w1, w2, w3 := Dot4F32Generic(a[0], y4[0], y4[1], y4[2], y4[3])
		for j, pair := range [][2]float64{{g0, w0}, {g1, w1}, {g2, w2}, {g3, w3}} {
			if !relClose(pair[0], pair[1]) {
				t.Fatalf("Dot4F32 s%d = %g, scalar oracle %g", j, pair[0], pair[1])
			}
		}
	})
}

// TestForceScalarRestores pins the ForceScalar contract: under it the
// dispatch variables produce bitwise-scalar results, and restore
// rebinds the init-time choice.
func TestForceScalarRestores(t *testing.T) {
	initPath := Path()
	restore := ForceScalar()
	if Path() != "scalar" {
		t.Fatalf("Path under ForceScalar = %q, want scalar", Path())
	}
	x := make([]float64, 17)
	y := make([]float64, 17)
	fill(x, 60)
	fill(y, 61)
	if got, want := Dot(x, y), DotGeneric(x, y); got != want {
		t.Fatalf("forced-scalar Dot = %g not bitwise-equal to DotGeneric %g", got, want)
	}
	restore()
	if Path() != initPath {
		t.Fatalf("Path after restore = %q, want %q", Path(), initPath)
	}
}

// TestScalarTailOrderMatchesUnrolled pins the satellite fix: the
// scalar dot reduces its four accumulators before folding the tail,
// so a length-(4k+r) dot equals the length-4k partial plus tail terms
// added in order.
func TestScalarTailOrderMatchesUnrolled(t *testing.T) {
	x := make([]float64, 11)
	y := make([]float64, 11)
	fill(x, 70)
	fill(y, 71)
	want := DotGeneric(x[:8], y[:8])
	want += x[8] * y[8]
	want += x[9] * y[9]
	want += x[10] * y[10]
	if got := DotGeneric(x, y); got != want {
		t.Fatalf("DotGeneric tail order: got %g, want head+tail %g", got, want)
	}
}

func TestDescribe(t *testing.T) {
	d := Describe()
	if want := "simd=" + Path(); len(d) < len(want) || d[:len(want)] != want {
		t.Fatalf("Describe() = %q, want prefix %q", d, want)
	}
}

// TestAxpyRowsAgainstScalar exercises the batched leaf fold across
// fringe row widths (including the R=16 register-resident fast path)
// and leaf counts, with repeated indices so the gather order matters.
func TestAxpyRowsAgainstScalar(t *testing.T) {
	forEachLen(t, func(t *testing.T, r int) {
		for _, leaves := range []int{0, 1, 2, 3, 7, 16, 33} {
			rows := 5
			pk := make([]float64, rows*r)
			fill(pk, 80)
			idx := make([]int32, leaves)
			vals := make([]float64, leaves)
			vals32 := make([]float32, leaves)
			fill(vals, 81)
			fill32(vals32, 82)
			for c := range idx {
				idx[c] = int32((c * 3) % rows)
			}

			got := make([]float64, r)
			want := make([]float64, r)
			fill(got, 83)
			copy(want, got)
			AxpyRows(got, pk, idx, vals)
			AxpyRowsGeneric(want, pk, idx, vals)
			checkSlices(t, fmt.Sprintf("AxpyRows leaves=%d", leaves), got, want)

			fill(got, 84)
			copy(want, got)
			AxpyRowsF32(got, pk, idx, vals32)
			AxpyRowsF32Generic(want, pk, idx, vals32)
			checkSlices(t, fmt.Sprintf("AxpyRowsF32 leaves=%d", leaves), got, want)
		}
	})
}

// TestAxpyRowsF32MatchesF64OnRounded pins the arithmetic-identity
// contract the CSF f32-vs-f64 bitwise tests build on: fed a float64
// stream that is exactly the widened float32 stream, AxpyRows and
// AxpyRowsF32 accumulate bitwise-identically on the same dispatch
// path.
func TestAxpyRowsF32MatchesF64OnRounded(t *testing.T) {
	for _, r := range []int{3, 8, 16, 17} {
		rows := 4
		pk := make([]float64, rows*r)
		fill(pk, 90)
		leaves := 11
		idx := make([]int32, leaves)
		vals32 := make([]float32, leaves)
		fill32(vals32, 91)
		vals := make([]float64, leaves)
		for c := range vals {
			vals[c] = float64(vals32[c])
			idx[c] = int32((c * 5) % rows)
		}
		a := make([]float64, r)
		b := make([]float64, r)
		fill(a, 92)
		copy(b, a)
		AxpyRows(a, pk, idx, vals)
		AxpyRowsF32(b, pk, idx, vals32)
		for i := range a {
			if a[i] != b[i] { //repro:bitwise exact widening must not change the accumulation
				t.Fatalf("R=%d: f64 vs widened-f32 fold diverge at %d: %v vs %v", r, i, a[i], b[i])
			}
		}
	}
}
