//go:build amd64 && !purego

package simd

// Assembly stubs (kernels_amd64.s). Each asm body takes its length
// from the first destination (or x) slice header; the bind shims in
// dispatch_amd64.go trim every other slice to that length first, so
// short inputs panic at the trim exactly like the scalar kernels and
// the asm never reads out of bounds.

//go:noescape
func axpyAVX2(c, a []float64, w float64)

//go:noescape
func axpy2AVX2(o, p, d, l []float64, v float64)

//go:noescape
func axpy4x1AVX2(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64)

//go:noescape
func axpy1x4AVX2(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64)

//go:noescape
func axpy4x4AVX2(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
	w00, w01, w02, w03,
	w10, w11, w12, w13,
	w20, w21, w22, w23,
	w30, w31, w32, w33 float64)

//go:noescape
func dotAVX2(x, y []float64) float64

//go:noescape
func dot4AVX2(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64)

//go:noescape
func mulAVX2(dst, a, b []float64)

//go:noescape
func muladdAVX2(dst, a, b []float64)

//go:noescape
func addAVX2(dst, a []float64)

//go:noescape
func axpyF32AVX2(c []float64, a []float32, w float64)

//go:noescape
func axpy1x4F32AVX2(c []float64, a0, a1, a2, a3 []float32, w0, w1, w2, w3 float64)

//go:noescape
func dotF32AVX2(x []float32, y []float64) float64

//go:noescape
func dot4F32AVX2(x []float32, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64)

//go:noescape
func axpyRowsAVX2(dst, pk []float64, idx []int32, vals []float64)

//go:noescape
func axpyRowsF32AVX2(dst, pk []float64, idx []int32, vals []float32)

// cpuid executes CPUID with the given leaf/subleaf (cpuid_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)
