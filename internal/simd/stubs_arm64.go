//go:build arm64 && !purego

package simd

// Assembly stubs (kernels_arm64.s). Lengths come from the first
// destination (or x) slice header; the bind shims trim the rest.

//go:noescape
func axpyNEON(c, a []float64, w float64)

//go:noescape
func axpy2NEON(o, p, d, l []float64, v float64)

//go:noescape
func axpy4x1NEON(c0, c1, c2, c3, a []float64, w0, w1, w2, w3 float64)

//go:noescape
func axpy1x4NEON(c, a0, a1, a2, a3 []float64, w0, w1, w2, w3 float64)

//go:noescape
func axpy4x4NEON(c0, c1, c2, c3, a0, a1, a2, a3 []float64,
	w00, w01, w02, w03,
	w10, w11, w12, w13,
	w20, w21, w22, w23,
	w30, w31, w32, w33 float64)

//go:noescape
func dotNEON(x, y []float64) float64

//go:noescape
func dot4NEON(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64)

//go:noescape
func mulNEON(dst, a, b []float64)

//go:noescape
func muladdNEON(dst, a, b []float64)

//go:noescape
func addNEON(dst, a []float64)
