// Package simnet simulates the paper's distributed-memory parallel
// machine (Section II-C): P processors, each with a private local
// memory, connected by a network over which they exchange individual
// values. Communication cost is the number of words sent and received
// per processor (bandwidth cost); latency is not modeled, matching the
// paper's focus.
//
// Each processor runs as a goroutine. Point-to-point channels carry
// float64 payloads; the network counts words and messages per rank.
// Data actually moves — algorithms built on simnet compute real
// results, so correctness and communication cost are verified together.
package simnet

import (
	"fmt"
	"sync"

	"repro/internal/obs/flight"
)

// Network connects P ranks with buffered point-to-point channels and
// per-rank traffic counters.
type Network struct {
	p     int
	chans [][]chan []float64 // chans[src][dst]
	stats []Stats            // owned by rank goroutines during Run

	// sendSeq[src*p+dst] / recvSeq[src*p+dst] count messages per
	// directed channel; because only src's goroutine sends on (src,
	// dst) and only dst's receives, plain increments are race-free
	// (same ownership argument as stats). Channels are FIFO, so the
	// n-th send on a pair is the n-th receive — the sequence number
	// that keys a flight-recorder Send to its Recv as one flow.
	sendSeq []int64
	recvSeq []int64
}

// Stats counts one rank's traffic.
type Stats struct {
	SentWords int64
	RecvWords int64
	SentMsgs  int64
	RecvMsgs  int64
}

// Words returns sends plus receives, the per-processor quantity the
// paper's lower bounds constrain.
func (s Stats) Words() int64 { return s.SentWords + s.RecvWords }

// New creates a network with p ranks. Channel buffers hold up to cap
// in-flight messages per (src, dst) pair; the ring collectives in
// package comm need only 1, but a little slack keeps ad-hoc
// point-to-point patterns from serializing.
func New(p int) *Network {
	if p < 1 {
		panic(fmt.Sprintf("simnet: need at least 1 rank, got %d", p))
	}
	n := &Network{
		p:       p,
		chans:   make([][]chan []float64, p),
		stats:   make([]Stats, p),
		sendSeq: make([]int64, p*p),
		recvSeq: make([]int64, p*p),
	}
	for i := range n.chans {
		n.chans[i] = make([]chan []float64, p)
		for j := range n.chans[i] {
			if i != j {
				n.chans[i][j] = make(chan []float64, 8)
			}
		}
	}
	return n
}

// P returns the number of ranks.
func (n *Network) P() int { return n.p }

// Send transmits data from rank src to rank dst. The payload is copied,
// so the caller may reuse its buffer. Self-sends are forbidden (local
// data movement is free in the model and needs no channel).
func (n *Network) Send(src, dst int, data []float64) {
	n.checkRank(src)
	n.checkRank(dst)
	if src == dst {
		panic(fmt.Sprintf("simnet: rank %d sending to itself", src))
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	n.stats[src].SentWords += int64(len(data))
	n.stats[src].SentMsgs++
	seq := n.sendSeq[src*n.p+dst]
	n.sendSeq[src*n.p+dst]++
	flight.Rec().Send(src, dst, int64(len(data)), seq)
	n.chans[src][dst] <- buf
}

// Recv blocks until a message from src arrives at dst and returns it.
func (n *Network) Recv(src, dst int) []float64 {
	n.checkRank(src)
	n.checkRank(dst)
	if src == dst {
		panic(fmt.Sprintf("simnet: rank %d receiving from itself", dst))
	}
	data := <-n.chans[src][dst]
	n.stats[dst].RecvWords += int64(len(data))
	n.stats[dst].RecvMsgs++
	seq := n.recvSeq[src*n.p+dst]
	n.recvSeq[src*n.p+dst]++
	flight.Rec().Recv(src, dst, int64(len(data)), seq)
	return data
}

func (n *Network) checkRank(r int) {
	if r < 0 || r >= n.p {
		panic(fmt.Sprintf("simnet: rank %d out of [0,%d)", r, n.p))
	}
}

// RankStats returns rank r's counters. Call only when rank goroutines
// are quiescent (before Run or after it returns).
func (n *Network) RankStats(r int) Stats {
	n.checkRank(r)
	return n.stats[r]
}

// AllStats returns a copy of every rank's counters.
func (n *Network) AllStats() []Stats {
	out := make([]Stats, n.p)
	copy(out, n.stats)
	return out
}

// MaxWords returns the maximum over ranks of sent+received words — the
// quantity compared against "some processor performs at least W sends
// and receives" lower bounds.
func (n *Network) MaxWords() int64 {
	var m int64
	for _, s := range n.stats {
		if w := s.Words(); w > m {
			m = w
		}
	}
	return m
}

// TotalWords returns the sum over ranks of words sent (each word is
// counted once as a send and once as a receive; this counts sends).
func (n *Network) TotalWords() int64 {
	var t int64
	for _, s := range n.stats {
		t += s.SentWords
	}
	return t
}

// Run spawns one goroutine per rank executing body(rank) and waits for
// all of them. The first error (by rank order) is returned. A panic in
// any rank is re-panicked in the caller after all ranks finish or
// deadlock is avoided by the panic's unwinding.
func (n *Network) Run(body func(rank int) error) error {
	errs := make([]error, n.p)
	panics := make([]any, n.p)
	var wg sync.WaitGroup
	wg.Add(n.p)
	for r := 0; r < n.p; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
					// Unblock peers waiting on this rank: receivers on a
					// closed channel get an empty payload immediately
					// instead of deadlocking the whole run.
					for dst, ch := range n.chans[rank] {
						if dst != rank {
							close(ch)
						}
					}
				}
			}()
			errs[rank] = body(rank)
		}(r)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
