package simnet

import (
	"fmt"
	"strings"
	"testing"
)

func TestSendRecvMovesData(t *testing.T) {
	n := New(2)
	err := n.Run(func(rank int) error {
		if rank == 0 {
			n.Send(0, 1, []float64{1, 2, 3})
			return nil
		}
		got := n.Recv(0, 1)
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := n.RankStats(0); s.SentWords != 3 || s.SentMsgs != 1 || s.RecvWords != 0 {
		t.Fatalf("rank0 stats %+v", s)
	}
	if s := n.RankStats(1); s.RecvWords != 3 || s.RecvMsgs != 1 || s.SentWords != 0 {
		t.Fatalf("rank1 stats %+v", s)
	}
	if n.MaxWords() != 3 || n.TotalWords() != 3 {
		t.Fatalf("max=%d total=%d", n.MaxWords(), n.TotalWords())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	n := New(2)
	err := n.Run(func(rank int) error {
		if rank == 0 {
			buf := []float64{42}
			n.Send(0, 1, buf)
			buf[0] = -1 // mutate after send; receiver must see 42
			return nil
		}
		if got := n.Recv(0, 1); got[0] != 42 {
			return fmt.Errorf("payload aliased: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrdering(t *testing.T) {
	n := New(2)
	err := n.Run(func(rank int) error {
		if rank == 0 {
			for i := 0; i < 5; i++ {
				n.Send(0, 1, []float64{float64(i)})
			}
			return nil
		}
		for i := 0; i < 5; i++ {
			if got := n.Recv(0, 1); got[0] != float64(i) {
				return fmt.Errorf("out of order: want %d got %v", i, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	n := New(3)
	err := n.Run(func(rank int) error {
		if rank == 1 {
			return fmt.Errorf("rank 1 failed")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	n := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	_ = n.Run(func(rank int) error {
		if rank == 0 {
			panic("boom")
		}
		// Rank 1 blocks on a message rank 0 never sends; the closed
		// channel must unblock it rather than deadlock the test.
		n.Recv(0, 1)
		return nil
	})
}

func TestRingExchangeCounts(t *testing.T) {
	// Every rank sends w words right and receives w from the left:
	// per-rank words = 2w, total sends = P*w.
	const P, w = 4, 10
	n := New(P)
	err := n.Run(func(rank int) error {
		payload := make([]float64, w)
		n.Send(rank, (rank+1)%P, payload)
		n.Recv((rank+P-1)%P, rank)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < P; r++ {
		if s := n.RankStats(r); s.Words() != 2*w {
			t.Fatalf("rank %d words = %d, want %d", r, s.Words(), 2*w)
		}
	}
	if n.TotalWords() != P*w {
		t.Fatalf("total = %d", n.TotalWords())
	}
	if len(n.AllStats()) != P {
		t.Fatal("AllStats length")
	}
}

func TestInvalidUses(t *testing.T) {
	n := New(2)
	for _, f := range []func(){
		func() { n.Send(0, 0, nil) },
		func() { n.Recv(1, 1) },
		func() { n.Send(2, 0, nil) },
		func() { n.Recv(0, 5) },
		func() { n.RankStats(9) },
		func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Stress: many rounds of randomized pairwise exchanges with exact
// word-count bookkeeping.
func TestManyRoundExchangeStress(t *testing.T) {
	const P, rounds = 8, 40
	n := New(P)
	err := n.Run(func(rank int) error {
		for round := 0; round < rounds; round++ {
			// Symmetric pairing: XOR with a nonzero round mask, so if
			// p is q's partner then q is p's.
			partner := rank ^ (1 + round%(P-1))
			size := 1 + (rank+round)%5
			if rank < partner {
				n.Send(rank, partner, make([]float64, size))
				n.Recv(partner, rank)
			} else {
				n.Recv(partner, rank)
				n.Send(rank, partner, make([]float64, size))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Global conservation: total sent == total received.
	var sent, recv int64
	for _, s := range n.AllStats() {
		sent += s.SentWords
		recv += s.RecvWords
	}
	if sent != recv || sent == 0 {
		t.Fatalf("sent %d != received %d", sent, recv)
	}
}

func TestSingleRankNetwork(t *testing.T) {
	n := New(1)
	if err := n.Run(func(rank int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n.MaxWords() != 0 {
		t.Fatal("no traffic expected")
	}
}
