package sparse

// Compressed sparse fiber (CSF) representation: the nonzeros of a COO
// tensor arranged as a forest of fibers rooted at one mode, in the
// style of SPLATT (Smith & Karypis). Level 0 of the tree holds the
// distinct root-mode indices; each deeper level splits its parent
// fiber by the next mode's index; the leaves carry the values. The
// tree is stored as contiguous int32 index/pointer slabs (one backing
// array for all levels), so a traversal is a pointer-chase-free walk
// over dense, cache-resident arrays, and every duplicate coordinate
// has been summed at construction. Shared index prefixes are stored —
// and later multiplied — once per fiber instead of once per nonzero,
// which is where the MTTKRP kernel's arithmetic saving over COO comes
// from (see csfkernel.go).

import (
	"fmt"
	"math"
	"sort"
)

// CSF is a sparse tensor compressed into a fiber tree rooted at one
// mode. Construction sorts and deduplicates; the resulting slabs are
// immutable, so one CSF may be shared by concurrent readers.
type CSF struct {
	dims []int
	perm []int // perm[lv] = tensor mode stored at level lv; perm[0] is the root
	lvl  []int // lvl[k] = level of tensor mode k (inverse of perm)

	// ptr[lv] (lv < N-1) has len nodes(lv)+1: the children of node i
	// at level lv occupy [ptr[lv][i], ptr[lv][i+1]) at level lv+1.
	ptr [][]int32
	// idx[lv] has len nodes(lv): the mode-perm[lv] index of each node.
	idx [][]int32
	// vals are the leaf values, aligned with idx[N-1].
	vals []float64
	// vals32 is the optional float32 mirror of vals (EnableF32Values):
	// when non-nil the kernels stream leaf values from it — half the
	// bytes on the dominant read stream — and widen to float64 for
	// every accumulation.
	vals32 []float32

	// rootLeaf[f] is the first leaf under root fiber f (len roots+1);
	// the cumulative nonzero counts behind the nnz-balanced chunk
	// tiling of the parallel kernel.
	rootLeaf []int32
}

// FromCOO builds a fiber tree rooted at the given mode: entries are
// sorted lexicographically with the root mode outermost (remaining
// modes in ascending order), duplicate coordinates are summed in their
// append order, and the per-level index/pointer slabs are carved from
// single contiguous int32 allocations. The COO tensor is not modified.
func FromCOO(c *COO, root int) *CSF {
	N := c.Order()
	if N < 2 {
		panic("sparse: CSF requires an order >= 2 tensor")
	}
	if root < 0 || root >= N {
		panic(fmt.Sprintf("sparse: root mode %d out of range [0,%d)", root, N))
	}
	for _, d := range c.dims {
		if d > math.MaxInt32 {
			panic(fmt.Sprintf("sparse: dim %d exceeds int32 index range", d))
		}
	}
	if len(c.entries) > math.MaxInt32 {
		panic(fmt.Sprintf("sparse: nnz %d exceeds int32 pointer range", len(c.entries)))
	}
	perm := make([]int, 0, N)
	perm = append(perm, root)
	for k := 0; k < N; k++ {
		if k != root {
			perm = append(perm, k)
		}
	}
	lvl := make([]int, N)
	for l, k := range perm {
		lvl[k] = l
	}
	t := &CSF{
		dims: append([]int(nil), c.dims...),
		perm: perm,
		lvl:  lvl,
	}

	ents := c.entries
	ord := sortEntries(ents, c.dims, perm)

	if len(ord) == 0 {
		t.idx = make([][]int32, N)
		t.ptr = make([][]int32, N-1)
		for l := range t.ptr {
			t.ptr[l] = []int32{0}
		}
		t.rootLeaf = []int32{0}
		return t
	}

	// Pass 1: node counts per level after deduplication. An entry that
	// first differs from its predecessor at level d opens one new node
	// at every level >= d.
	counts := make([]int, N)
	for l := range counts {
		counts[l] = 1
	}
	for s := 1; s < len(ord); s++ {
		d := diffLevel(ents[ord[s-1]].Idx, ents[ord[s]].Idx, perm)
		for l := d; l < N; l++ {
			counts[l]++
		}
	}

	// Carve the per-level views out of two contiguous slabs.
	idxTotal, ptrTotal := 0, 0
	for l, n := range counts {
		idxTotal += n
		if l < N-1 {
			ptrTotal += n + 1
		}
	}
	idxSlab := make([]int32, idxTotal)
	ptrSlab := make([]int32, ptrTotal)
	t.idx = make([][]int32, N)
	t.ptr = make([][]int32, N-1)
	io, po := 0, 0
	for l := 0; l < N; l++ {
		t.idx[l] = idxSlab[io : io+counts[l]]
		io += counts[l]
		if l < N-1 {
			t.ptr[l] = ptrSlab[po : po+counts[l]+1]
			po += counts[l] + 1
		}
	}
	t.vals = make([]float64, counts[N-1])
	t.rootLeaf = make([]int32, counts[0]+1)

	// Pass 2: fill. pos[l] is the next free node slot at level l; a
	// node's child pointer is the child level's cursor at open time
	// (children always open immediately after their parent).
	pos := make([]int, N)
	open := func(e Entry, from int) {
		for l := from; l < N; l++ {
			t.idx[l][pos[l]] = int32(e.Idx[perm[l]])
			if l < N-1 {
				t.ptr[l][pos[l]] = int32(pos[l+1])
			} else {
				t.vals[pos[l]] = e.Val
			}
			if l == 0 {
				t.rootLeaf[pos[0]] = int32(pos[N-1])
			}
			pos[l]++
		}
	}
	open(ents[ord[0]], 0)
	for s := 1; s < len(ord); s++ {
		e := ents[ord[s]]
		d := diffLevel(ents[ord[s-1]].Idx, e.Idx, perm)
		if d == N {
			t.vals[pos[N-1]-1] += e.Val // duplicate coordinate: sum
			continue
		}
		open(e, d)
	}
	for l := 0; l < N-1; l++ {
		t.ptr[l][counts[l]] = int32(counts[l+1])
	}
	t.rootLeaf[counts[0]] = int32(counts[N-1])
	return t
}

// sortEntries returns a permutation of the entry indices in
// lexicographic perm-major coordinate order, stable among duplicates
// (so their values sum in append order). When every coordinate packs
// into one uint64 linear offset it runs a stable LSD radix sort —
// roughly an order of magnitude faster than a comparator sort at
// nnz ~ 10^6 — and falls back to sort.SliceStable otherwise.
func sortEntries(ents []Entry, dims []int, perm []int) []int {
	ord := make([]int, len(ents))
	for i := range ord {
		ord[i] = i
	}
	if len(ord) < 2 {
		return ord
	}
	cells := uint64(1)
	packable := true
	for _, k := range perm {
		d := uint64(dims[k])
		if cells > math.MaxUint64/d {
			packable = false
			break
		}
		cells *= d
	}
	if !packable {
		sort.SliceStable(ord, func(a, b int) bool {
			ea, eb := ents[ord[a]].Idx, ents[ord[b]].Idx
			for _, k := range perm {
				if ea[k] != eb[k] {
					return ea[k] < eb[k]
				}
			}
			return false
		})
		return ord
	}
	keys := make([]uint64, len(ents))
	var maxKey uint64
	for i := range ents {
		key := uint64(0)
		for _, k := range perm {
			key = key*uint64(dims[k]) + uint64(ents[i].Idx[k])
		}
		keys[i] = key
		if key > maxKey {
			maxKey = key
		}
	}
	tmp := make([]int, len(ord))
	var count [256]int
	for shift := uint(0); maxKey>>shift > 0 || shift == 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, o := range ord {
			count[(keys[o]>>shift)&0xff]++
		}
		if count[keys[ord[0]]>>shift&0xff] == len(ord) {
			continue // every key shares this digit
		}
		sum := 0
		for i, n := range count {
			count[i] = sum
			sum += n
		}
		for _, o := range ord {
			d := (keys[o] >> shift) & 0xff
			tmp[count[d]] = o
			count[d]++
		}
		ord, tmp = tmp, ord
	}
	return ord
}

// diffLevel returns the first level (in perm order) where two
// coordinates differ, or len(perm) when they are equal.
func diffLevel(a, b []int, perm []int) int {
	for l, k := range perm {
		if a[k] != b[k] {
			return l
		}
	}
	return len(perm)
}

// Order returns the number of modes.
func (t *CSF) Order() int { return len(t.dims) }

// Dims returns a copy of the tensor dimensions.
func (t *CSF) Dims() []int { return append([]int(nil), t.dims...) }

// Root returns the mode the fiber tree is rooted at.
func (t *CSF) Root() int { return t.perm[0] }

// NNZ returns the number of stored (deduplicated) nonzeros.
func (t *CSF) NNZ() int { return len(t.vals) }

// EnableF32Values converts the leaf-value stream to float32 storage
// (rounding once per value) and points the kernels at it. The fiber
// tree, factor mirrors, and all accumulation stay float64; only the
// nnz-length value stream shrinks. Irreversible precision loss for
// this tree — build a fresh CSF to return to float64 values.
func (t *CSF) EnableF32Values() {
	if t.vals32 != nil {
		return
	}
	t.vals32 = make([]float32, len(t.vals))
	for i, v := range t.vals {
		t.vals32[i] = float32(v)
	}
	// Re-round the float64 copy so ToCOO and the reference kernels see
	// exactly the values the f32 stream holds.
	for i, v := range t.vals32 {
		t.vals[i] = float64(v)
	}
}

// F32Values reports whether the float32 value stream is active.
func (t *CSF) F32Values() bool { return t.vals32 != nil }

// Fibers returns the number of root fibers (distinct root-mode
// indices present).
func (t *CSF) Fibers() int { return len(t.idx[0]) }

// Nodes returns the node count at tree level lv (level 0 = root
// fibers, level N-1 = nonzeros).
func (t *CSF) Nodes(lv int) int { return len(t.idx[lv]) }

// ToCOO expands the tree back to coordinate form (sorted fiber
// order), primarily for tests.
func (t *CSF) ToCOO() *COO {
	out := NewCOO(t.dims...)
	N := len(t.dims)
	path := make([]int32, N)
	var walk func(lv int, node int32)
	walk = func(lv int, node int32) {
		path[lv] = t.idx[lv][node]
		if lv == N-1 {
			idx := make([]int, N)
			for l, k := range t.perm {
				idx[k] = int(path[l])
			}
			out.entries = append(out.entries, Entry{Idx: idx, Val: t.vals[node]})
			return
		}
		for c := t.ptr[lv][node]; c < t.ptr[lv][node+1]; c++ {
			walk(lv+1, c)
		}
	}
	for f := range t.idx[0] {
		walk(0, int32(f))
	}
	return out
}

// kernelCost returns the streaming-model traffic of one kernel pass
// over the tree for output level lout (-1 = the all-modes pass):
// reads cover the leaf values, one factor row per participating node,
// and the read half of the output accumulations; writes cover the
// output accumulations; flops count the per-node prefix extension
// (R), subtree fold (2R), and output accumulate (2R) passes. The
// counts depend only on the tree shape, so totals are trivially
// independent of the worker count.
func (t *CSF) kernelCost(lout, R int) (reads, writes, flops int64) {
	N := len(t.dims)
	r64 := int64(R)
	reads = int64(len(t.vals)) // leaf values
	for lv := 0; lv < N; lv++ {
		m := int64(len(t.idx[lv]))
		if lout < 0 { // all-modes pass
			if lv != N-1 {
				reads += m * r64 // factor row per node with children
				flops += m * r64 // prefix extension
			}
			if lv != 0 {
				reads += m * r64 // factor row folded into the parent sum
				flops += 2 * m * r64
			}
			reads += m * r64 // output row read-modify-write
			writes += m * r64
			flops += 2 * m * r64
			continue
		}
		switch {
		case lv == lout:
			reads += m * r64
			writes += m * r64
			flops += 2 * m * r64
		case lv < lout:
			reads += m * r64 // prefix factor row
			if lv > 0 {
				flops += m * r64
			}
		default:
			reads += m * r64 // subtree factor row (leaf rows included)
			flops += 2 * m * r64
		}
	}
	return reads, writes, flops
}
