package sparse

import (
	"testing"

	"repro/internal/simd"
	"repro/internal/tensor"
)

// round32Factors narrows a factor set to float32 and returns the
// exactly-widened float64 copies alongside.
func round32Factors(fs []*tensor.Matrix) ([]*tensor.Matrix32, []*tensor.Matrix) {
	fs32 := make([]*tensor.Matrix32, len(fs))
	wide := make([]*tensor.Matrix, len(fs))
	for k := range fs {
		fs32[k] = tensor.Matrix32FromMatrix(fs[k])
		wide[k] = fs32[k].ToMatrix()
	}
	return fs32, wide
}

// TestCSFF32MatchesF64Bitwise: after EnableF32Values re-rounds the
// float64 value stream, the float32 kernel walks exactly the numbers
// the float64 kernel walks (factor widening is exact, accumulation is
// shared), so MTTKRP32 must equal the rounded float64 MTTKRP bitwise —
// on the active dispatch path and forced scalar.
func TestCSFF32MatchesF64Bitwise(t *testing.T) {
	run := func(t *testing.T) {
		dims := []int{7, 6, 5, 4}
		R := 3
		s := Random(71, 180, dims...)
		fs := tensor.RandomFactors(72, dims, R)
		fs32, wide := round32Factors(fs)
		for root := range dims {
			cs := FromCOO(s, root)
			cs.EnableF32Values()
			if !cs.F32Values() {
				t.Fatal("EnableF32Values did not stick")
			}
			for n := range dims {
				want := cs.MTTKRP(wide, n)
				got := cs.MTTKRP32(fs32, n)
				wd := want.Data()
				for i, v := range got.Data() {
					if v != float32(wd[i]) { //repro:bitwise shared walk + exact widening: only the final store rounds
						t.Fatalf("root %d mode %d: f32 kernel diverges at %d: %v vs %v",
							root, n, i, v, float32(wd[i]))
					}
				}
			}
			w64 := cs.AllModes(wide, 1)
			w32 := cs.AllModes32(fs32, 1)
			for k := range dims {
				wd := w64[k].Data()
				for i, v := range w32[k].Data() {
					if v != float32(wd[i]) { //repro:bitwise all-modes pass shares the identical walk
						t.Fatalf("root %d all-modes out %d: diverges at %d", root, k, i)
					}
				}
			}
		}
	}
	t.Run("dispatch="+simd.Path(), run)
	restore := simd.ForceScalar()
	defer restore()
	t.Run("dispatch=scalar", run)
}

// TestCSFF32WorkersBitwise: the float32 entry points keep the
// fixed-chunk scheduling, so every worker count stores the identical
// float32 result.
func TestCSFF32WorkersBitwise(t *testing.T) {
	dims := []int{16, 12, 9}
	R := 4
	s := Random(73, 500, dims...)
	fs := tensor.RandomFactors(74, dims, R)
	fs32, _ := round32Factors(fs)
	cs := FromCOO(s, 0)
	cs.EnableF32Values()
	for n := range dims {
		serial := tensor.NewMatrix32(dims[n], R)
		cs.MTTKRPInto32(serial, fs32, n, 1, nil)
		for _, w := range []int{2, 3, 8} {
			par := tensor.NewMatrix32(dims[n], R)
			cs.MTTKRPInto32(par, fs32, n, w, nil)
			for i, v := range par.Data() {
				if v != serial.Data()[i] { //repro:bitwise the worker-count-independence contract under test
					t.Fatalf("mode %d workers=%d: differs from serial at %d", n, w, i)
				}
			}
		}
	}
}

// TestEnableF32ValuesRerounds: the float64 stream is re-rounded in
// place so ToCOO and the reference kernels agree exactly with what the
// float32 stream holds, and enabling twice is a no-op.
func TestEnableF32ValuesRerounds(t *testing.T) {
	s := Random(75, 60, 8, 7, 6)
	cs := FromCOO(s, 1)
	cs.EnableF32Values()
	for i, v := range cs.vals {
		if v != float64(cs.vals32[i]) { //repro:bitwise re-round invariant: both streams hold the same values
			t.Fatalf("vals[%d] = %v not re-rounded to %v", i, v, float64(cs.vals32[i]))
		}
	}
	before := append([]float32(nil), cs.vals32...)
	cs.EnableF32Values()
	for i, v := range cs.vals32 {
		if v != before[i] { //repro:bitwise idempotence: the second enable must not touch the stream
			t.Fatalf("second EnableF32Values changed vals32[%d]", i)
		}
	}
	// The rounded tree still round-trips through COO consistently.
	rt := FromCOO(cs.ToCOO(), 1)
	for i, v := range rt.vals {
		if v != cs.vals[i] { //repro:bitwise COO round-trip of the rounded values
			t.Fatalf("round-trip val %d: %v vs %v", i, v, cs.vals[i])
		}
	}
}

// TestCSFF32ZeroAllocSteadyState: the float32 entry points keep the
// zero-allocation steady state with a reused workspace.
func TestCSFF32ZeroAllocSteadyState(t *testing.T) {
	dims := []int{14, 11, 9}
	R := 4
	s := Random(77, 300, dims...)
	fs := tensor.RandomFactors(78, dims, R)
	fs32, _ := round32Factors(fs)
	cs := FromCOO(s, 0)
	cs.EnableF32Values()
	ws := NewWorkspace()
	b := tensor.NewMatrix32(dims[1], R)
	pass := func() { cs.MTTKRPInto32(b, fs32, 1, 1, ws) }
	pass()                                                     // warm to steady state
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 { //repro:bitwise exact allocation count
		t.Errorf("steady-state float32 pass allocates %v objects/op, want 0", allocs)
	}
}
