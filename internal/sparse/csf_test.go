package sparse

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/tensor"
)

// maxAbsDiff over two matrices, for tolerance comparisons.
func matDiff(a, b *tensor.Matrix) float64 { return a.MaxAbsDiff(b) }

// TestCSFStructure: FromCOO sorts, deduplicates, and round-trips.
func TestCSFStructure(t *testing.T) {
	c := NewCOO(3, 4, 5)
	c.Append(1.0, 2, 1, 3)
	c.Append(2.0, 0, 0, 0)
	c.Append(3.0, 2, 1, 3) // duplicate of the first: summed to 4
	c.Append(5.0, 2, 1, 4) // same (i,j) fiber, new leaf
	c.Append(7.0, 0, 3, 0)
	for root := 0; root < 3; root++ {
		f := FromCOO(c, root)
		if f.Root() != root || f.Order() != 3 {
			t.Fatalf("root %d: got root %d order %d", root, f.Root(), f.Order())
		}
		if f.NNZ() != 4 {
			t.Fatalf("root %d: nnz %d, want 4 after dedup", root, f.NNZ())
		}
		if d := matDense(f.ToCOO()).MaxAbsDiff(matDense(c)); d != 0 { //repro:bitwise dedup must sum exactly
			t.Fatalf("root %d: round-trip differs by %g", root, d)
		}
	}
	f := FromCOO(c, 0)
	if f.Fibers() != 2 { // root indices 0 and 2
		t.Fatalf("fibers %d, want 2", f.Fibers())
	}
	if f.Nodes(2) != f.NNZ() {
		t.Fatalf("leaf nodes %d != nnz %d", f.Nodes(2), f.NNZ())
	}
}

// matDense flattens a COO into a dense tensor viewed as one long
// column so MaxAbsDiff can compare them.
func matDense(c *COO) *tensor.Matrix {
	d := c.ToDense()
	return tensor.NewMatrixFromData(d.Data(), len(d.Data()), 1)
}

// TestCSFMatchesCOOAndDense: property test over orders 3-5, every
// output mode and every root mode, against both the COO kernel and
// the dense KRP-splitting kernel on the materialized tensor.
func TestCSFMatchesCOOAndDense(t *testing.T) {
	const R = 5
	shapes := [][]int{
		{6, 7, 8},
		{5, 4, 3, 6},
		{3, 4, 2, 3, 4},
	}
	for _, dims := range shapes {
		cells := 1
		for _, d := range dims {
			cells *= d
		}
		c := Random(11, cells/3, dims...)
		fs := tensor.RandomFactors(13, dims, R)
		x := c.ToDense()
		for n := range dims {
			want := MTTKRP(c, fs, n)
			dense := kernel.Fast(x, fs, n)
			if d := matDiff(want, dense); d > 1e-10 {
				t.Fatalf("dims %v mode %d: coo vs dense differ by %g", dims, n, d)
			}
			for root := range dims {
				f := FromCOO(c, root)
				got := f.MTTKRPWorkers(fs, n, 1)
				if d := matDiff(got, want); d > 1e-10 {
					t.Fatalf("dims %v mode %d root %d: csf vs coo differ by %g",
						dims, n, root, d)
				}
			}
		}
	}
}

// TestCSFDuplicates: duplicate coordinates are summed, matching the
// COO kernel's accumulate-in-place semantics.
func TestCSFDuplicates(t *testing.T) {
	dims := []int{5, 6, 7, 4}
	c := Random(17, 80, dims...)
	// Re-append half of the entries with new values (duplicates).
	for i, e := range c.Entries() {
		if i%2 == 0 {
			c.Append(float64(i)*0.25-3, e.Idx...)
		}
	}
	fs := tensor.RandomFactors(19, dims, 4)
	for n := range dims {
		want := MTTKRP(c, fs, n)
		got := FromCOO(c, n).MTTKRPWorkers(fs, n, 1)
		if d := matDiff(got, want); d > 1e-10 {
			t.Fatalf("mode %d: csf vs coo with duplicates differ by %g", n, d)
		}
	}
}

// TestCSFDegenerate: size-1 modes, a single entry, and an empty
// tensor all work at every root/output mode.
func TestCSFDegenerate(t *testing.T) {
	const R = 3
	shapes := [][]int{
		{1, 5, 4},
		{4, 1, 1, 3},
		{1, 1, 2},
	}
	for _, dims := range shapes {
		cells := 1
		for _, d := range dims {
			cells *= d
		}
		nnzs := []int{0, 1, cells / 2, cells}
		for _, nnz := range nnzs {
			c := Random(23, nnz, dims...)
			fs := tensor.RandomFactors(29, dims, R)
			for n := range dims {
				want := MTTKRP(c, fs, n)
				for root := range dims {
					got := FromCOO(c, root).MTTKRP(fs, n)
					if d := matDiff(got, want); d > 1e-10 {
						t.Fatalf("dims %v nnz %d mode %d root %d: differ by %g",
							dims, nnz, n, root, d)
					}
				}
			}
		}
	}
}

// TestCSFWorkerBitwise: the determinism contract — every worker count
// from 1 to 8 produces bitwise-identical output for every mode, for
// both the single-mode and the all-modes kernels.
func TestCSFWorkerBitwise(t *testing.T) {
	dims := []int{40, 31, 17, 9}
	c := Random(31, 6000, dims...)
	fs := tensor.RandomFactors(37, dims, 6)
	f := FromCOO(c, 0)
	base := make([]*tensor.Matrix, len(dims))
	for n := range dims {
		base[n] = f.MTTKRPWorkers(fs, n, 1)
	}
	baseAll := f.AllModes(fs, 1)
	for n := range dims {
		bd, ad := base[n].Data(), baseAll[n].Data()
		for i := range bd {
			if bd[i] != ad[i] { //repro:bitwise all-modes pass shares the single-mode arithmetic order
				t.Fatalf("mode %d elem %d: all-modes %x != single %x", n, i, ad[i], bd[i])
			}
		}
	}
	for w := 2; w <= 8; w++ {
		for n := range dims {
			got := f.MTTKRPWorkers(fs, n, w)
			gd, bd := got.Data(), base[n].Data()
			for i := range gd {
				if gd[i] != bd[i] { //repro:bitwise the worker-count-independence contract under test
					t.Fatalf("workers %d mode %d elem %d: %x != %x", w, n, i, gd[i], bd[i])
				}
			}
		}
		gotAll := f.AllModes(fs, w)
		for n := range dims {
			gd, bd := gotAll[n].Data(), base[n].Data()
			for i := range gd {
				if gd[i] != bd[i] { //repro:bitwise the worker-count-independence contract under test
					t.Fatalf("all-modes workers %d mode %d elem %d: %x != %x", w, n, i, gd[i], bd[i])
				}
			}
		}
	}
}

// TestCSFZeroAlloc: after a warm-up call, MTTKRPInto and AllModesInto
// allocate nothing, single- and multi-worker alike.
func TestCSFZeroAlloc(t *testing.T) {
	dims := []int{32, 24, 28}
	c := Random(41, 4000, dims...)
	fs := tensor.RandomFactors(43, dims, 8)
	f := FromCOO(c, 0)
	b := tensor.NewMatrix(dims[1], 8)
	outs := make([]*tensor.Matrix, len(dims))
	for k := range outs {
		outs[k] = tensor.NewMatrix(dims[k], 8)
	}
	for _, w := range []int{1, 4} {
		ws := NewWorkspace()
		defer ws.Release()
		f.MTTKRPInto(b, fs, 1, w, ws)                                                                  // warm buffers and spawn the pool
		if allocs := testing.AllocsPerRun(10, func() { f.MTTKRPInto(b, fs, 1, w, ws) }); allocs != 0 { //repro:bitwise exact allocation count
			t.Errorf("MTTKRPInto workers=%d: steady state allocates %v objects/op, want 0", w, allocs)
		}
		f.AllModesInto(outs, fs, w, ws)
		if allocs := testing.AllocsPerRun(10, func() { f.AllModesInto(outs, fs, w, ws) }); allocs != 0 { //repro:bitwise exact allocation count
			t.Errorf("AllModesInto workers=%d: steady state allocates %v objects/op, want 0", w, allocs)
		}
	}
}

// TestCSFSharedAcrossModes: one CSF serves every output mode without
// rebuilding, and the pooled-workspace path (ws == nil) works.
func TestCSFSharedAcrossModes(t *testing.T) {
	dims := []int{12, 9, 14}
	c := Random(47, 300, dims...)
	fs := tensor.RandomFactors(53, dims, 4)
	f := FromCOO(c, 1) // root deliberately != 0
	for n := range dims {
		want := MTTKRP(c, fs, n)
		got := f.MTTKRP(fs, n)
		if d := matDiff(got, want); d > 1e-10 {
			t.Fatalf("mode %d via shared csf: differ by %g", n, d)
		}
	}
	all := f.AllModes(fs, 0)
	for n := range dims {
		want := MTTKRP(c, fs, n)
		if d := matDiff(all[n], want); d > 1e-10 {
			t.Fatalf("all-modes mode %d: differ by %g", n, d)
		}
	}
}
