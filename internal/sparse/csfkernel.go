package sparse

// Sparse MTTKRP over the CSF fiber tree. The walk propagates two
// R-vectors per tree path: a top-down prefix (the Hadamard product of
// factor rows along the path above the node) and a bottom-up subtree
// sum S(node) = Σ_leaves val · ⊙ factor rows below the node. The
// mode-n MTTKRP row update is then
//
//	B[idx(node), :] += prefix(node) ⊙ S(node)
//
// at the tree level holding mode n, so every shared index prefix is
// multiplied once per fiber instead of once per nonzero — the sparse
// counterpart of the dense KRP-splitting reuse (Phan et al.), and the
// all-modes pass shares one set of subtree sums across every output
// (tree-ALS-style). Factor rows are read from packed row-major
// mirrors, so there are no At calls and no strided column walks in
// the hot loops.
//
// Parallel determinism: root fibers are tiled into a fixed number of
// nnz-balanced chunks (csfChunks, never derived from the worker
// count), each chunk accumulates into its own bucket in a fixed
// sequential order, and buckets merge through kernel.ReduceTree's
// fixed reduction tree — so the result is bitwise identical for every
// worker count. When the output mode is the root, chunks own disjoint
// output rows and write one shared accumulator directly.

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/simd"
	"repro/internal/tensor"
)

// csfChunks is the accumulation-bucket count of the parallel CSF
// walk. It is a package variable — settable by the cost-model planner
// via SetChunks — but never derived from the worker count, so chunk
// boundaries, bucket contents, and the ReduceTree merge order are
// identical no matter how many workers drain the queue.
var csfChunks = 32

// SetChunks retunes the nnz-balanced chunk (accumulation-bucket)
// count of the parallel CSF walk. More chunks smooth load imbalance
// across skewed fiber trees at the price of more ReduceTree merge
// traffic. n is clamped to [1, 1024]; n <= 0 restores the default
// (32). The chunking changes private-bucket contents but not the
// merge discipline, so results stay bitwise independent of the worker
// count for any setting. Not safe to call concurrently with running
// kernels; set once at planning time.
func SetChunks(n int) {
	switch {
	case n <= 0:
		csfChunks = 32
	case n > 1024:
		csfChunks = 1024
	default:
		csfChunks = n
	}
}

// Chunks reports the current chunk count of the parallel CSF walk.
func Chunks() int { return csfChunks }

// csfWalker is one worker's traversal state: per-level output
// buckets for the chunk in hand plus recursion scratch for the
// subtree sums and prefixes (one R-vector per tree level each).
type csfWalker struct {
	t      *CSF
	R      int
	lout   int         // output level of the single-mode walk
	packed [][]float64 // per-level row-major factor mirrors (shared, read-only)
	outs   [][]float64 // per-level row-major output buckets for the current chunk
	sub    []float64   // N*R subtree-sum scratch; level lv uses [lv*R, (lv+1)*R)
	pre    []float64   // N*R prefix scratch, same indexing
}

// MTTKRP computes the mode-n matricized tensor times Khatri-Rao
// product with the default worker count, allocating the result.
func (t *CSF) MTTKRP(factors []*tensor.Matrix, n int) *tensor.Matrix {
	return t.MTTKRPWorkers(factors, n, 0)
}

// MTTKRPWorkers is MTTKRP with an explicit worker count (0 = default).
func (t *CSF) MTTKRPWorkers(factors []*tensor.Matrix, n, workers int) *tensor.Matrix {
	R := t.checkFactors(factors, n)
	b := tensor.NewMatrix(t.dims[n], R)
	t.MTTKRPInto(b, factors, n, workers, nil)
	return b
}

// MTTKRPInto computes b = X_(n) · KRP(factors ≠ n) over the fiber
// tree. factors[n] may be nil. workers <= 0 uses the default count; a
// nil ws borrows one from the pool. Steady state allocates nothing,
// and the result is bitwise identical for every worker count.
//
//repro:hotpath
func (t *CSF) MTTKRPInto(b *tensor.Matrix, factors []*tensor.Matrix, n, workers int, ws *Workspace) {
	R := t.checkFactors(factors, n)
	if b.Rows() != t.dims[n] || b.Cols() != R {
		panic(fmt.Sprintf("sparse: MTTKRPInto output is %dx%d, want %dx%d",
			b.Rows(), b.Cols(), t.dims[n], R))
	}
	if ws == nil {
		ws = GetWorkspace()
		defer PutWorkspace(ws)
	}
	span := obs.Start(obs.PhaseSparse)
	defer span.Stop()
	lout := t.lvl[n]
	total := t.dims[n] * R
	workers, nbuf := t.pool(workers)
	ws.ensure(t, R, workers, nbuf, total)
	for lv := 0; lv < len(t.dims); lv++ {
		if lv == lout {
			continue
		}
		packRowMajor(ws.packed[lv], factors[t.perm[lv]], R)
	}
	t.kernelPass(R, lout, workers, nbuf, total, ws)
	t.addKernelCost(lout, R)
	scatterRowMajor(b, ws.acc[:total], R)
}

// AllModes computes the MTTKRP for every mode in one traversal,
// allocating the results (outs[k] is the mode-k MTTKRP).
func (t *CSF) AllModes(factors []*tensor.Matrix, workers int) []*tensor.Matrix {
	R := t.checkFactors(factors, -1)
	outs := make([]*tensor.Matrix, len(t.dims))
	for k := range outs {
		outs[k] = tensor.NewMatrix(t.dims[k], R)
	}
	t.AllModesInto(outs, factors, workers, nil)
	return outs
}

// AllModesInto computes the MTTKRP of every mode in a single pass
// over one fiber tree: the bottom-up subtree sums are computed once
// and combined with the top-down prefixes at every level, so the N
// outputs share all interior work (tree-ALS-style reuse). Same
// determinism and zero-allocation contract as MTTKRPInto.
//
//repro:hotpath
func (t *CSF) AllModesInto(outs []*tensor.Matrix, factors []*tensor.Matrix, workers int, ws *Workspace) {
	R := t.checkFactors(factors, -1)
	N := len(t.dims)
	if len(outs) != N {
		panic(fmt.Sprintf("sparse: got %d outputs for an order-%d tensor", len(outs), N))
	}
	for k, o := range outs {
		if o == nil || o.Rows() != t.dims[k] || o.Cols() != R {
			panic(fmt.Sprintf("sparse: AllModesInto output %d has wrong shape", k))
		}
	}
	if ws == nil {
		ws = GetWorkspace()
		defer PutWorkspace(ws)
	}
	span := obs.Start(obs.PhaseSparse)
	defer span.Stop()
	total := 0
	for lv := 0; lv < N; lv++ {
		total += t.dims[t.perm[lv]] * R
	}
	workers, nbuf := t.pool(workers)
	ws.ensure(t, R, workers, nbuf, total)
	for lv := 0; lv < N; lv++ {
		packRowMajor(ws.packed[lv], factors[t.perm[lv]], R)
	}
	t.kernelPass(R, -1, workers, nbuf, total, ws)
	t.addKernelCost(-1, R)
	off := 0
	for lv := 0; lv < N; lv++ {
		sz := t.dims[t.perm[lv]] * R
		scatterRowMajor(outs[t.perm[lv]], ws.acc[off:off+sz], R)
		off += sz
	}
}

// pool resolves the worker count and bucket count for a pass: the
// bucket count is the fixed csfChunks clamped to the root-fiber count
// (at least 1), and workers never exceed buckets.
func (t *CSF) pool(workers int) (int, int) {
	workers = linalg.ResolveWorkers(workers)
	nbuf := csfChunks
	if f := len(t.idx[0]); nbuf > f {
		nbuf = f
	}
	if nbuf < 1 {
		nbuf = 1
	}
	if workers > nbuf {
		workers = nbuf
	}
	return workers, nbuf
}

// checkFactors validates the factor set for output mode n (n < 0
// validates all modes, for the all-modes pass) and returns the rank.
func (t *CSF) checkFactors(factors []*tensor.Matrix, n int) int {
	N := len(t.dims)
	if len(factors) != N {
		panic(fmt.Sprintf("sparse: got %d factors for an order-%d tensor", len(factors), N))
	}
	R := -1
	for k := 0; k < N; k++ {
		if k == n {
			continue
		}
		f := factors[k]
		if f == nil {
			panic(fmt.Sprintf("sparse: factor %d is nil", k))
		}
		if f.Rows() != t.dims[k] {
			panic(fmt.Sprintf("sparse: factor %d has %d rows, want %d", k, f.Rows(), t.dims[k]))
		}
		if R < 0 {
			R = f.Cols()
		} else if f.Cols() != R {
			panic(fmt.Sprintf("sparse: factor %d has %d cols, want %d", k, f.Cols(), R))
		}
	}
	return R
}

// kernelPass runs one walk over the tree into ws.acc (row-major;
// the single-mode layout is In x R, the all-modes layout concatenates
// the per-level blocks). ws must be ensured and ws.packed filled for
// every participating level. lout < 0 selects the all-modes walk.
//
//repro:hotpath
func (t *CSF) kernelPass(R, lout, workers, nbuf, total int, ws *Workspace) {
	N := len(t.dims)
	allModes := lout < 0
	acc := ws.acc[:total]
	for i := range acc {
		acc[i] = 0
	}
	// When the output mode is the root, chunks own disjoint root rows
	// and share one accumulator; otherwise each chunk past the first
	// gets a private bucket, merged below by ReduceTree.
	shared := lout == 0
	ws.bufs = append(ws.bufs[:0], acc) //repro:ignore hotpath-alloc bucket list reuses workspace capacity ensured by ensure
	if shared {
		for c := 1; c < nbuf; c++ {
			ws.bufs = append(ws.bufs, acc) //repro:ignore hotpath-alloc appends within capacity ensured by ensure
		}
	} else {
		priv := ws.priv[:(nbuf-1)*total]
		for i := range priv {
			priv[i] = 0
		}
		for c := 1; c < nbuf; c++ {
			ws.bufs = append(ws.bufs, priv[(c-1)*total:c*total]) //repro:ignore hotpath-alloc appends within capacity ensured by ensure
		}
	}
	t.chunkBounds(ws, nbuf)
	for w := 0; w < workers; w++ {
		wk := &ws.walkers[w]
		wk.t = t
		wk.R = R
		wk.lout = lout
		wk.packed = ws.packed
		wk.sub = ws.stack[w*2*N*R : w*2*N*R+N*R]
		wk.pre = ws.stack[w*2*N*R+N*R : (w+1)*2*N*R]
	}
	t.runChunks(ws, workers, nbuf, allModes)
	if !shared {
		kernel.ReduceTree(ws.bufs[:nbuf], workers)
	}
}

// chunkBounds fills ws.bounds with nbuf nnz-balanced chunk boundaries
// over the root fibers: boundary c is the first fiber whose cumulative
// leaf count reaches fraction c/nbuf of the nonzeros. The split
// depends only on the tree shape, never on the worker count.
//
//repro:hotpath
func (t *CSF) chunkBounds(ws *Workspace, nbuf int) {
	F := len(t.idx[0])
	nnz := int64(len(t.vals))
	ws.bounds[0] = 0
	for c := 1; c < nbuf; c++ {
		target := int32(nnz * int64(c) / int64(nbuf))
		lo, hi := int(ws.bounds[c-1]), F
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if t.rootLeaf[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ws.bounds[c] = int32(lo)
	}
	ws.bounds[nbuf] = int32(F)
}

// runChunks drains the chunk queue, inline when workers <= 1 and
// with the workspace's persistent goroutine pool otherwise. Bucket
// assignment is by chunk id alone, so any number of workers produces
// bitwise-identical buckets.
//
//repro:hotpath
func (t *CSF) runChunks(ws *Workspace, workers, nbuf int, allModes bool) {
	ws.queue.Store(0)
	if workers <= 1 {
		for c := 0; c < nbuf; c++ {
			runChunk(t, &ws.walkers[0], ws, c, allModes)
		}
		return
	}
	ws.passT, ws.passNbuf, ws.passAll = t, nbuf, allModes
	ws.ensurePool(workers)
	ws.wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		ws.start <- i
	}
	// The calling goroutine is worker 0 and drains alongside the pool.
	drainQueue(t, &ws.walkers[0], ws, nbuf, allModes)
	ws.wg.Wait()
	ws.passT = nil
}

// poolWorker is one persistent pool goroutine: each token on start
// names the walker slot to drain the chunk queue with, and closing
// the channel (Workspace.Release) terminates it. The channel comes in
// as an argument — never re-read from the workspace — so Release can
// swap the field without racing parked workers. A named top-level
// function, so only its one-time spawn allocates; goroutines meet
// only in disjoint per-chunk buckets (or disjoint root rows), merged
// deterministically afterwards.
func poolWorker(ws *Workspace, start chan int) {
	for i := range start {
		drainQueue(ws.passT, &ws.walkers[i], ws, ws.passNbuf, ws.passAll)
		ws.wg.Done()
	}
}

// drainQueue claims chunks off the shared queue until it is empty.
func drainQueue(t *CSF, wk *csfWalker, ws *Workspace, nbuf int, allModes bool) {
	for {
		c := int(ws.queue.Add(1)) - 1
		if c >= nbuf {
			return
		}
		runChunk(t, wk, ws, c, allModes)
	}
}

// runChunk points the walker's per-level outputs at chunk c's bucket
// and walks the chunk's root-fiber range.
func runChunk(t *CSF, wk *csfWalker, ws *Workspace, c int, allModes bool) {
	buf := ws.bufs[c]
	R := wk.R
	if allModes {
		off := 0
		for lv := range wk.outs {
			sz := t.dims[t.perm[lv]] * R
			wk.outs[lv] = buf[off : off+sz]
			off += sz
		}
	} else {
		wk.outs[wk.lout] = buf
	}
	f0, f1 := int(ws.bounds[c]), int(ws.bounds[c+1])
	if allModes {
		wk.runAll(f0, f1)
	} else {
		wk.run(f0, f1)
	}
}

// run processes root fibers [f0, f1) of the single-mode walk. With
// the output at the root there is no prefix: each fiber folds its
// subtree sum straight into its (chunk-owned) output row.
func (w *csfWalker) run(f0, f1 int) {
	t, R := w.t, w.R
	if w.lout == 0 {
		out := w.outs[0]
		idx0 := t.idx[0]
		for f := f0; f < f1; f++ {
			s := w.sub[:R]
			w.subtree(0, int32(f), s)
			i := int(idx0[f]) * R
			row := out[i : i+R]
			simd.Add(row, s)
		}
		return
	}
	for f := f0; f < f1; f++ {
		w.descend(0, int32(f), nil)
	}
}

// descend walks the levels above the output level, extending the
// running prefix (Hadamard product of factor rows along the path; nil
// means all-ones at the root) and, on reaching the output level,
// combining it with the bottom-up subtree sum.
func (w *csfWalker) descend(lv int, node int32, prefix []float64) {
	t, R := w.t, w.R
	if lv == w.lout {
		i := int(t.idx[lv][node]) * R
		row := w.outs[lv][i : i+R]
		if lv == len(t.dims)-1 {
			v := t.vals[node]
			if t.vals32 != nil {
				v = float64(t.vals32[node])
			}
			simd.Axpy(row, prefix, v)
			return
		}
		s := w.sub[lv*R : (lv+1)*R]
		w.subtree(lv, node, s)
		simd.MulAdd(row, prefix, s)
		return
	}
	i := int(t.idx[lv][node]) * R
	frow := w.packed[lv][i : i+R]
	cp := w.pre[(lv+1)*R : (lv+2)*R]
	if prefix == nil {
		copy(cp, frow)
	} else {
		simd.Mul(cp, prefix, frow)
	}
	for c := t.ptr[lv][node]; c < t.ptr[lv][node+1]; c++ {
		w.descend(lv+1, c, cp)
	}
}

// subtree writes S(node) into dst: the sum over leaves below the node
// of the leaf value times the Hadamard product of the factor rows of
// every level strictly below lv. Leaf children are folded inline so
// the innermost loop is a contiguous R-wide multiply-add.
func (w *csfWalker) subtree(lv int, node int32, dst []float64) {
	t, R := w.t, w.R
	for r := range dst {
		dst[r] = 0
	}
	c0, c1 := t.ptr[lv][node], t.ptr[lv][node+1]
	pk := w.packed[lv+1]
	if lv+1 == len(t.dims)-1 {
		leafIdx := t.idx[lv+1]
		// One batched call folds the whole fiber's leaves: the kernel
		// gathers pk rows by leaf index, so the per-leaf dispatch
		// overhead of an Axpy-per-leaf loop disappears (and R=16 keeps
		// dst in registers across the run on the AVX2 path).
		if v32 := t.vals32; v32 != nil {
			simd.AxpyRowsF32(dst, pk, leafIdx[c0:c1], v32[c0:c1])
		} else {
			simd.AxpyRows(dst, pk, leafIdx[c0:c1], t.vals[c0:c1])
		}
		return
	}
	cs := w.sub[(lv+1)*R : (lv+2)*R]
	cIdx := t.idx[lv+1]
	for c := c0; c < c1; c++ {
		w.subtree(lv+1, c, cs)
		i := int(cIdx[c]) * R
		simd.MulAdd(dst, pk[i:i+R], cs)
	}
}

// runAll processes root fibers [f0, f1) of the all-modes walk.
func (w *csfWalker) runAll(f0, f1 int) {
	for f := f0; f < f1; f++ {
		w.walkAll(0, int32(f), nil, w.sub[:w.R])
	}
}

// walkAll computes the subtree sum of node into dst while emitting
// the output contribution of every node it visits —
// out[lv][idx(node)] += prefix(node) ⊙ S(node) at each level — in one
// pass over the tree, sharing the subtree sums across all N outputs.
// A nil prefix means all-ones (the root).
func (w *csfWalker) walkAll(lv int, node int32, prefix, dst []float64) {
	t, R := w.t, w.R
	for r := range dst {
		dst[r] = 0
	}
	i := int(t.idx[lv][node]) * R
	frow := w.packed[lv][i : i+R]
	cp := w.pre[(lv+1)*R : (lv+2)*R]
	if prefix == nil {
		copy(cp, frow)
	} else {
		simd.Mul(cp, prefix, frow)
	}
	c0, c1 := t.ptr[lv][node], t.ptr[lv][node+1]
	pk := w.packed[lv+1]
	if lv+1 == len(t.dims)-1 {
		leafIdx := t.idx[lv+1]
		outLeaf := w.outs[lv+1]
		// Fused leaf update: one value drives both the leaf-mode
		// output row and this node's subtree sum. The value-stream
		// branch is hoisted out of the leaf loop.
		if v32 := t.vals32; v32 != nil {
			for c := c0; c < c1; c++ {
				j := int(leafIdx[c]) * R
				simd.Axpy2(outLeaf[j:j+R], cp, dst, pk[j:j+R], float64(v32[c]))
			}
		} else {
			for c := c0; c < c1; c++ {
				j := int(leafIdx[c]) * R
				simd.Axpy2(outLeaf[j:j+R], cp, dst, pk[j:j+R], t.vals[c])
			}
		}
	} else {
		cs := w.sub[(lv+1)*R : (lv+2)*R]
		cIdx := t.idx[lv+1]
		for c := c0; c < c1; c++ {
			w.walkAll(lv+1, c, cp, cs)
			j := int(cIdx[c]) * R
			simd.MulAdd(dst, pk[j:j+R], cs)
		}
	}
	orow := w.outs[lv][i : i+R]
	if prefix == nil {
		simd.Add(orow, dst)
	} else {
		simd.MulAdd(orow, prefix, dst)
	}
}

// packRowMajor mirrors a column-major factor into a row-major slab so
// the walkers read each factor row as one contiguous R-vector.
//
//repro:hotpath
func packRowMajor(dst []float64, f *tensor.Matrix, R int) {
	obs.Copy(f.Rows() * R)
	for r := 0; r < R; r++ {
		col := f.Col(r)
		for i, v := range col {
			dst[i*R+r] = v
		}
	}
}

// scatterRowMajor transposes a row-major accumulator block into a
// column-major output matrix.
//
//repro:hotpath
func scatterRowMajor(b *tensor.Matrix, src []float64, R int) {
	I := b.Rows()
	obs.Copy(I * R)
	bd := b.Data()
	for r := 0; r < R; r++ {
		col := bd[r*I : (r+1)*I]
		for i := range col {
			col[i] = src[i*R+r]
		}
	}
}

// addKernelCost charges one kernel pass to the active obs collector
// at kernel-call granularity (see CSF.kernelCost); the totals depend
// only on the tree shape and rank, so they are identical for every
// worker count.
func (t *CSF) addKernelCost(lout, R int) { t.addKernelCostWorker(0, lout, R) }

// addKernelCostWorker charges the pass to a specific collector worker
// slab (used by the parallel ranks to attribute local compute).
func (t *CSF) addKernelCostWorker(w, lout, R int) {
	if !obs.Enabled() {
		return
	}
	reads, writes, flops := t.kernelCost(lout, R)
	obs.AddWorker(w, obs.WordsRead, reads)
	obs.AddWorker(w, obs.WordsWritten, writes)
	obs.AddWorker(w, obs.Flops, flops)
}
