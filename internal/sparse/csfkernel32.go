package sparse

// Float32 storage entry points for the CSF MTTKRP: factors and output
// in float32, the leaf-value stream in float32 when EnableF32Values
// has run. The fiber-tree walk itself is untouched — factors widen to
// float64 in the row-major pack, every accumulation runs in float64
// through the exact same kernelPass, and the result rounds to float32
// in the scatter. Determinism therefore carries over verbatim: the
// output is bitwise identical for every worker count.

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// MTTKRP32 computes the mode-n MTTKRP on float32 factors with the
// default worker count, allocating a float32 result.
func (t *CSF) MTTKRP32(factors []*tensor.Matrix32, n int) *tensor.Matrix32 {
	R := t.checkFactors32(factors, n)
	b := tensor.NewMatrix32(t.dims[n], R)
	t.MTTKRPInto32(b, factors, n, 0, nil)
	return b
}

// MTTKRPInto32 is MTTKRPInto with float32 factor and output storage.
// factors[n] may be nil. Accumulation is float64 end to end; the only
// new roundings are the per-element factor widen (exact) and the final
// float32 store.
//
//repro:hotpath
func (t *CSF) MTTKRPInto32(b *tensor.Matrix32, factors []*tensor.Matrix32, n, workers int, ws *Workspace) {
	R := t.checkFactors32(factors, n)
	if b.Rows() != t.dims[n] || b.Cols() != R {
		panic(fmt.Sprintf("sparse: MTTKRPInto32 output is %dx%d, want %dx%d",
			b.Rows(), b.Cols(), t.dims[n], R))
	}
	if ws == nil {
		ws = GetWorkspace()
		defer PutWorkspace(ws)
	}
	span := obs.Start(obs.PhaseSparse)
	defer span.Stop()
	lout := t.lvl[n]
	total := t.dims[n] * R
	workers, nbuf := t.pool(workers)
	ws.ensure(t, R, workers, nbuf, total)
	for lv := 0; lv < len(t.dims); lv++ {
		if lv == lout {
			continue
		}
		packRowMajor32(ws.packed[lv], factors[t.perm[lv]], R)
	}
	t.kernelPass(R, lout, workers, nbuf, total, ws)
	t.addKernelCost(lout, R)
	scatterRowMajor32(b, ws.acc[:total], R)
}

// AllModes32 computes every mode's MTTKRP on float32 factors in one
// traversal, allocating the float32 results.
func (t *CSF) AllModes32(factors []*tensor.Matrix32, workers int) []*tensor.Matrix32 {
	R := t.checkFactors32(factors, -1)
	outs := make([]*tensor.Matrix32, len(t.dims))
	for k := range outs {
		outs[k] = tensor.NewMatrix32(t.dims[k], R)
	}
	t.AllModesInto32(outs, factors, workers, nil)
	return outs
}

// AllModesInto32 is AllModesInto with float32 factor and output
// storage; same shared-walk reuse, float64 accumulation, and
// worker-count bitwise determinism.
//
//repro:hotpath
func (t *CSF) AllModesInto32(outs []*tensor.Matrix32, factors []*tensor.Matrix32, workers int, ws *Workspace) {
	R := t.checkFactors32(factors, -1)
	N := len(t.dims)
	if len(outs) != N {
		panic(fmt.Sprintf("sparse: got %d outputs for an order-%d tensor", len(outs), N))
	}
	for k, o := range outs {
		if o == nil || o.Rows() != t.dims[k] || o.Cols() != R {
			panic(fmt.Sprintf("sparse: AllModesInto32 output %d has wrong shape", k))
		}
	}
	if ws == nil {
		ws = GetWorkspace()
		defer PutWorkspace(ws)
	}
	span := obs.Start(obs.PhaseSparse)
	defer span.Stop()
	total := 0
	for lv := 0; lv < N; lv++ {
		total += t.dims[t.perm[lv]] * R
	}
	workers, nbuf := t.pool(workers)
	ws.ensure(t, R, workers, nbuf, total)
	for lv := 0; lv < N; lv++ {
		packRowMajor32(ws.packed[lv], factors[t.perm[lv]], R)
	}
	t.kernelPass(R, -1, workers, nbuf, total, ws)
	t.addKernelCost(-1, R)
	off := 0
	for lv := 0; lv < N; lv++ {
		sz := t.dims[t.perm[lv]] * R
		scatterRowMajor32(outs[t.perm[lv]], ws.acc[off:off+sz], R)
		off += sz
	}
}

// checkFactors32 validates a float32 factor set for output mode n
// (n < 0 validates all modes) and returns the rank.
func (t *CSF) checkFactors32(factors []*tensor.Matrix32, n int) int {
	N := len(t.dims)
	if len(factors) != N {
		panic(fmt.Sprintf("sparse: got %d factors for an order-%d tensor", len(factors), N))
	}
	R := -1
	for k := 0; k < N; k++ {
		if k == n {
			continue
		}
		f := factors[k]
		if f == nil {
			panic(fmt.Sprintf("sparse: factor %d is nil", k))
		}
		if f.Rows() != t.dims[k] {
			panic(fmt.Sprintf("sparse: factor %d has %d rows, want %d", k, f.Rows(), t.dims[k]))
		}
		if R < 0 {
			R = f.Cols()
		} else if f.Cols() != R {
			panic(fmt.Sprintf("sparse: factor %d has %d cols, want %d", k, f.Cols(), R))
		}
	}
	return R
}

// packRowMajor32 mirrors a column-major float32 factor into the
// row-major float64 slab the walkers read — the widening is exact, so
// the walk sees the same numbers a pre-widened factor would give.
//
//repro:hotpath
func packRowMajor32(dst []float64, f *tensor.Matrix32, R int) {
	obs.Copy(f.Rows() * R)
	for r := 0; r < R; r++ {
		col := f.Col(r)
		for i, v := range col {
			dst[i*R+r] = float64(v)
		}
	}
}

// scatterRowMajor32 transposes the row-major float64 accumulator into
// a column-major float32 output — the single store-side rounding of
// the sparse float32 path.
//
//repro:hotpath
func scatterRowMajor32(b *tensor.Matrix32, src []float64, R int) {
	I := b.Rows()
	obs.Copy(I * R)
	bd := b.Data()
	for r := 0; r < R; r++ {
		col := bd[r*I : (r+1)*I]
		for i := range col {
			col[i] = float32(src[i*R+r])
		}
	}
}
