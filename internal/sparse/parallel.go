package sparse

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// LocalEngine selects the per-rank local MTTKRP kernel of the
// owner-computes parallelization. The communication schedule — and
// therefore the measured volume — is identical for every engine; only
// the local compute differs.
type LocalEngine int

const (
	// EngineCSF runs each rank's local compute over a compressed
	// sparse fiber tree rooted at the output mode (the default).
	EngineCSF LocalEngine = iota
	// EngineCOO runs the naive per-nonzero COO loop.
	EngineCOO
)

// String returns the engine's flag spelling.
func (e LocalEngine) String() string {
	switch e {
	case EngineCSF:
		return "csf"
	case EngineCOO:
		return "coo"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine maps a flag value ("csf" or "coo") to a LocalEngine.
func ParseEngine(s string) (LocalEngine, error) {
	switch s {
	case "csf":
		return EngineCSF, nil
	case "coo":
		return EngineCOO, nil
	}
	return 0, fmt.Errorf("sparse: unknown engine %q (want csf or coo)", s)
}

// ParallelResult carries a distributed sparse MTTKRP's output and
// traffic statistics.
type ParallelResult struct {
	B     *tensor.Matrix
	Stats []simnet.Stats
}

// TotalSent returns the total words sent — by construction equal to
// the (lambda-1) communication volume of the partition.
func (r *ParallelResult) TotalSent() int64 {
	var t int64
	for _, s := range r.Stats {
		t += s.SentWords
	}
	return t
}

// MaxWords returns the maximum per-rank sends+receives.
func (r *ParallelResult) MaxWords() int64 {
	var m int64
	for _, s := range r.Stats {
		if w := s.Words(); w > m {
			m = w
		}
	}
	return m
}

// ParallelMTTKRP runs an owner-computes expand/fold sparse MTTKRP on
// the simulated machine: each processor owns the nonzeros its
// partition assigns it; every factor/output row is owned by the
// lowest-numbered part touching it. The expand phase sends each input
// row to its non-owner touchers; the fold phase sends partial output
// rows to their owners. Total words sent equal CommVolume(c, part, n, R)
// exactly, making the hypergraph metric a measured quantity.
//
// Local compute runs on the CSF engine; use ParallelMTTKRPEngine to
// select the COO fallback.
func ParallelMTTKRP(c *COO, factors []*tensor.Matrix, n int, part Partition) (*ParallelResult, error) {
	return ParallelMTTKRPEngine(c, factors, n, part, EngineCSF)
}

// ParallelMTTKRPEngine is ParallelMTTKRP with an explicit local
// engine. Phase spans (expand/local/fold) and per-rank comm word
// counts flow to the active obs collector; the communication schedule
// is engine-independent, so TotalSent always equals the hypergraph
// metric.
func ParallelMTTKRPEngine(c *COO, factors []*tensor.Matrix, n int, part Partition, engine LocalEngine) (*ParallelResult, error) {
	N := c.Order()
	if len(part.Assign) != c.NNZ() {
		return nil, fmt.Errorf("sparse: partition covers %d of %d entries", len(part.Assign), c.NNZ())
	}
	R := -1
	for k, f := range factors {
		if k == n {
			continue
		}
		if f == nil || f.Rows() != c.dims[k] {
			return nil, fmt.Errorf("sparse: factor %d bad shape", k)
		}
		if R == -1 {
			R = f.Cols()
		} else if R != f.Cols() {
			return nil, fmt.Errorf("sparse: inconsistent rank")
		}
	}
	if R == -1 {
		return nil, fmt.Errorf("sparse: no participating factors")
	}
	P := part.P

	// Row touchers and owners (lowest-numbered toucher).
	touch := lambda(c, part, n)
	owner := make(map[rowKey]int, len(touch))
	for key, parts := range touch {
		o := P
		for p := range parts {
			if p < o {
				o = p
			}
		}
		owner[key] = o
	}

	// Local nonzeros per part.
	localEntries := make([][]Entry, P)
	for e, ent := range c.entries {
		p := part.Assign[e]
		localEntries[p] = append(localEntries[p], ent)
	}

	// Per-rank fiber trees, rooted at the output mode so each rank's
	// partial rows are exactly its root fibers. Built outside the
	// simulated machine: in the model the local data layout is free,
	// like the initial distribution of the factor rows.
	var csfs []*CSF
	if engine == EngineCSF {
		csfs = make([]*CSF, P)
		for p := 0; p < P; p++ {
			csfs[p] = FromCOO(&COO{dims: c.dims, entries: localEntries[p]}, n)
		}
	}

	// Deterministic communication schedules. Keys sorted for matching
	// send/receive order on both sides.
	type schedule struct {
		keys map[[2]int][]rowKey // (src,dst) -> ordered row keys
	}
	expand := schedule{keys: make(map[[2]int][]rowKey)}
	fold := schedule{keys: make(map[[2]int][]rowKey)}
	sortedKeys := make([]rowKey, 0, len(touch))
	for key := range touch {
		sortedKeys = append(sortedKeys, key)
	}
	sort.Slice(sortedKeys, func(a, b int) bool {
		if sortedKeys[a].mode != sortedKeys[b].mode {
			return sortedKeys[a].mode < sortedKeys[b].mode
		}
		return sortedKeys[a].idx < sortedKeys[b].idx
	})
	for _, key := range sortedKeys {
		o := owner[key]
		for p := 0; p < P; p++ {
			if p == o || !touch[key][p] {
				continue
			}
			if key.mode != n {
				// Input row: owner -> toucher.
				expand.keys[[2]int{o, p}] = append(expand.keys[[2]int{o, p}], key)
			} else {
				// Output row: toucher -> owner.
				fold.keys[[2]int{p, o}] = append(fold.keys[[2]int{p, o}], key)
			}
		}
	}

	// Owned factor rows handed out by the driver (inputs start
	// distributed at their owners, free in the model).
	ownedRows := make([]map[rowKey][]float64, P)
	for p := 0; p < P; p++ {
		ownedRows[p] = make(map[rowKey][]float64)
	}
	for key, o := range owner {
		if key.mode == n {
			continue
		}
		row := make([]float64, R)
		for r := 0; r < R; r++ {
			row[r] = factors[key.mode].At(key.idx, r)
		}
		ownedRows[o][key] = row
	}

	net := simnet.New(P)
	finalRows := make([]map[int][]float64, P) // output row -> values, at owner
	err := net.Run(func(rank int) error {
		// Expand phase: send owned rows to touchers, one batched
		// message per destination.
		expandSpan := obs.StartRank(rank, obs.PhaseExpand)
		for dst := 0; dst < P; dst++ {
			keys := expand.keys[[2]int{rank, dst}]
			if len(keys) == 0 {
				continue
			}
			payload := make([]float64, 0, len(keys)*R)
			for _, key := range keys {
				payload = append(payload, ownedRows[rank][key]...)
			}
			net.Send(rank, dst, payload)
			obs.Comm(rank, int64(len(payload)), 0)
		}
		haveRows := make(map[rowKey][]float64, len(ownedRows[rank]))
		for key, row := range ownedRows[rank] {
			haveRows[key] = row
		}
		for src := 0; src < P; src++ {
			keys := expand.keys[[2]int{src, rank}]
			if len(keys) == 0 {
				continue
			}
			payload := net.Recv(src, rank)
			obs.Comm(rank, 0, int64(len(payload)))
			if len(payload) != len(keys)*R {
				return fmt.Errorf("sparse: rank %d expand payload %d, want %d", rank, len(payload), len(keys)*R)
			}
			for i, key := range keys {
				haveRows[key] = payload[i*R : (i+1)*R]
			}
		}
		expandSpan.Stop()

		// Local owner-computes accumulation into partial output rows.
		localSpan := obs.StartRank(rank, obs.PhaseLocal)
		var partial map[int][]float64
		if engine == EngineCSF {
			partial = localCSF(csfs[rank], haveRows, rank, R)
		} else {
			partial = localCOO(localEntries[rank], haveRows, n, N, R)
		}
		localSpan.Stop()

		// Fold phase: ship partial rows to their owners.
		foldSpan := obs.StartRank(rank, obs.PhaseFold)
		defer foldSpan.Stop()
		for dst := 0; dst < P; dst++ {
			keys := fold.keys[[2]int{rank, dst}]
			if len(keys) == 0 {
				continue
			}
			payload := make([]float64, 0, len(keys)*R)
			for _, key := range keys {
				row := partial[key.idx]
				if row == nil {
					row = make([]float64, R)
				}
				payload = append(payload, row...)
				delete(partial, key.idx) // shipped away
			}
			net.Send(rank, dst, payload)
			obs.Comm(rank, int64(len(payload)), 0)
		}
		for src := 0; src < P; src++ {
			keys := fold.keys[[2]int{src, rank}]
			if len(keys) == 0 {
				continue
			}
			payload := net.Recv(src, rank)
			obs.Comm(rank, 0, int64(len(payload)))
			if len(payload) != len(keys)*R {
				return fmt.Errorf("sparse: rank %d fold payload %d, want %d", rank, len(payload), len(keys)*R)
			}
			for i, key := range keys {
				out := partial[key.idx]
				if out == nil {
					out = make([]float64, R)
					partial[key.idx] = out
				}
				for r := 0; r < R; r++ {
					out[r] += payload[i*R+r]
				}
			}
		}
		finalRows[rank] = partial
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble B from the owners.
	b := tensor.NewMatrix(c.dims[n], R)
	assemble(b, finalRows, R)
	return &ParallelResult{B: b, Stats: net.AllStats()}, nil
}

// localCSF runs one rank's local compute over its fiber tree: the
// gathered factor rows are packed into the workspace's row-major
// level slabs (rows the rank never touches stay zero and are never
// read), one kernel pass fills the root-level accumulator, and the
// partial map is read off the root fibers — exactly the distinct
// local output rows.
func localCSF(t *CSF, haveRows map[rowKey][]float64, rank, R int) map[int][]float64 {
	partial := make(map[int][]float64, t.Fibers())
	if t.NNZ() == 0 {
		return partial
	}
	_, nbuf := t.pool(1)
	total := t.dims[t.perm[0]] * R
	ws := NewWorkspace()
	ws.ensure(t, R, 1, nbuf, total)
	for lv := 1; lv < len(t.dims); lv++ {
		slab := ws.packed[lv]
		for i := range slab {
			slab[i] = 0
		}
	}
	// Map iteration order is irrelevant: every row lands in its own
	// disjoint slab slot.
	for key, row := range haveRows {
		lv := t.lvl[key.mode]
		copy(ws.packed[lv][key.idx*R:(key.idx+1)*R], row)
	}
	t.kernelPass(R, 0, 1, nbuf, total, ws)
	t.addKernelCostWorker(rank, 0, R)
	for f, ri := range t.idx[0] {
		row := make([]float64, R)
		copy(row, ws.acc[int(ri)*R:(int(ri)+1)*R])
		partial[int(ri)] = row
		_ = f
	}
	return partial
}

// localCOO is the naive per-nonzero fallback local compute.
func localCOO(entries []Entry, haveRows map[rowKey][]float64, n, N, R int) map[int][]float64 {
	partial := make(map[int][]float64)
	for _, ent := range entries {
		out := partial[ent.Idx[n]]
		if out == nil {
			out = make([]float64, R)
			partial[ent.Idx[n]] = out
		}
		for r := 0; r < R; r++ {
			p := ent.Val
			for k := 0; k < N; k++ {
				if k == n {
					continue
				}
				p *= haveRows[rowKey{k, ent.Idx[k]}][r]
			}
			out[r] += p
		}
	}
	return partial
}

// assemble adds every owner's final rows into the output matrix.
func assemble(b *tensor.Matrix, finalRows []map[int][]float64, R int) {
	for _, rows := range finalRows {
		for row, vals := range rows {
			for r := 0; r < R; r++ {
				b.AddAt(row, r, vals[r])
			}
		}
	}
}
