package sparse

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/tensor"
)

func TestParallelSparseCorrect(t *testing.T) {
	dims := []int{6, 5, 4}
	R := 3
	s := Random(11, 40, dims...)
	fs := tensor.RandomFactors(12, dims, R)
	x := s.ToDense()
	for _, P := range []int{1, 2, 4, 7} {
		for n := range dims {
			for name, part := range map[string]Partition{
				"block":  BlockPartition(s, P),
				"random": RandomPartition(s, P, 13),
			} {
				res, err := ParallelMTTKRP(s, fs, n, part)
				if err != nil {
					t.Fatalf("%s P=%d mode=%d: %v", name, P, n, err)
				}
				want := seq.Ref(x, fs, n)
				if !res.B.EqualApprox(want, 1e-9) {
					t.Fatalf("%s P=%d mode=%d: wrong result (%v)",
						name, P, n, res.B.MaxAbsDiff(want))
				}
			}
		}
	}
}

// The measured traffic equals the hypergraph (lambda-1) metric exactly
// — communication is literally the connectivity of the partition.
func TestMeasuredEqualsCommVolume(t *testing.T) {
	dims := []int{8, 8, 8}
	R := 4
	s := Random(17, 120, dims...)
	fs := tensor.RandomFactors(18, dims, R)
	for _, P := range []int{2, 4, 8} {
		for _, part := range []Partition{
			BlockPartition(s, P),
			RandomPartition(s, P, 19),
		} {
			res, err := ParallelMTTKRP(s, fs, 0, part)
			if err != nil {
				t.Fatal(err)
			}
			want := CommVolume(s, part, 0, R)
			if res.TotalSent() != want {
				t.Fatalf("P=%d: measured %d words, metric %d", P, res.TotalSent(), want)
			}
		}
	}
}

// Structure pays: on a blocky tensor, the contiguous partition has
// lower communication volume (metric and measured) than the random
// one — the phenomenon that motivates hypergraph partitioning.
func TestBlockBeatsRandomOnBlockyTensor(t *testing.T) {
	dims := []int{24, 24, 24}
	R := 4
	s := RandomBlocky(21, 8, 60, 5, dims...)
	fs := tensor.RandomFactors(22, dims, R)
	P := 8
	block := BlockPartition(s, P)
	random := RandomPartition(s, P, 23)
	vb := CommVolume(s, block, 0, R)
	vr := CommVolume(s, random, 0, R)
	if vb >= vr {
		t.Fatalf("block volume %d should beat random %d on blocky data", vb, vr)
	}
	rb, err := ParallelMTTKRP(s, fs, 0, block)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ParallelMTTKRP(s, fs, 0, random)
	if err != nil {
		t.Fatal(err)
	}
	if rb.TotalSent() >= rr.TotalSent() {
		t.Fatalf("measured: block %d should beat random %d", rb.TotalSent(), rr.TotalSent())
	}
	// And both compute the right thing.
	want := seq.Ref(s.ToDense(), fs, 0)
	if !rb.B.EqualApprox(want, 1e-9) || !rr.B.EqualApprox(want, 1e-9) {
		t.Fatal("wrong results")
	}
}

func TestSinglePartNoComm(t *testing.T) {
	s := Random(25, 20, 5, 5)
	fs := tensor.RandomFactors(26, []int{5, 5}, 2)
	part := BlockPartition(s, 1)
	res, err := ParallelMTTKRP(s, fs, 0, part)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSent() != 0 {
		t.Fatalf("P=1 sent %d words", res.TotalSent())
	}
	if CommVolume(s, part, 0, 2) != 0 {
		t.Fatal("P=1 volume should be 0")
	}
}

func TestMaxPartLoad(t *testing.T) {
	part := Partition{P: 3, Assign: []int{0, 0, 1, 2, 0}}
	if MaxPartLoad(part) != 3 {
		t.Fatalf("MaxPartLoad = %d", MaxPartLoad(part))
	}
}

// Both local engines compute the same MTTKRP over the same
// engine-independent communication schedule, and the obs-measured
// comm words equal the simnet stats and the hypergraph metric.
func TestParallelEnginesAgree(t *testing.T) {
	dims := []int{9, 7, 8, 5}
	R := 3
	s := Random(61, 220, dims...)
	fs := tensor.RandomFactors(62, dims, R)
	col := obs.New(8)
	obs.Enable(col)
	defer obs.Disable()
	for _, P := range []int{2, 5} {
		part := BlockPartition(s, P)
		for n := range dims {
			metric := CommVolume(s, part, n, R)
			var ref *tensor.Matrix
			for _, engine := range []LocalEngine{EngineCOO, EngineCSF} {
				col.Reset()
				res, err := ParallelMTTKRPEngine(s, fs, n, part, engine)
				if err != nil {
					t.Fatalf("P=%d mode=%d %v: %v", P, n, engine, err)
				}
				if res.TotalSent() != metric {
					t.Fatalf("P=%d mode=%d %v: sent %d words, metric %d",
						P, n, engine, res.TotalSent(), metric)
				}
				tot := col.Totals()
				if tot.CommSent != metric || tot.CommRecv != metric {
					t.Fatalf("P=%d mode=%d %v: obs comm %d/%d, metric %d",
						P, n, engine, tot.CommSent, tot.CommRecv, metric)
				}
				if engine == EngineCSF && s.NNZ() > 0 && tot.Flops == 0 {
					t.Fatalf("P=%d mode=%d: csf local compute recorded no flops", P, n)
				}
				if ref == nil {
					ref = res.B
				} else if d := res.B.MaxAbsDiff(ref); d > 1e-10 {
					t.Fatalf("P=%d mode=%d: engines differ by %g", P, n, d)
				}
			}
		}
	}
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want LocalEngine
	}{{"csf", EngineCSF}, {"coo", EngineCOO}} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseEngine("fancy"); err == nil {
		t.Fatal("unknown engine should error")
	}
}

func TestParallelErrors(t *testing.T) {
	s := Random(27, 10, 4, 4)
	fs := tensor.RandomFactors(28, []int{4, 4}, 2)
	if _, err := ParallelMTTKRP(s, fs, 0, Partition{P: 2, Assign: []int{0}}); err == nil {
		t.Fatal("short partition should error")
	}
	bad := []*tensor.Matrix{nil, tensor.NewMatrix(9, 2)}
	if _, err := ParallelMTTKRP(s, bad, 0, BlockPartition(s, 2)); err == nil {
		t.Fatal("bad factor shape should error")
	}
	if _, err := ParallelMTTKRP(s, []*tensor.Matrix{nil, nil}, 0, BlockPartition(s, 2)); err == nil {
		t.Fatal("no participating factors should error")
	}
}
