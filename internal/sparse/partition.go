package sparse

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
)

// Partition assigns each nonzero to one of P parts (owner-computes).
type Partition struct {
	P      int
	Assign []int // Assign[e] in [0, P) for entry e
}

// BlockPartition sorts the entries by linear offset and cuts them into
// P contiguous, nearly equal chunks — the cheap structured baseline.
func BlockPartition(c *COO, P int) Partition {
	if P < 1 {
		panic(fmt.Sprintf("sparse: P = %d", P))
	}
	c.SortLinear()
	assign := make([]int, c.NNZ())
	for p := 0; p < P; p++ {
		lo, hi := grid.Part(c.NNZ(), P, p)
		for e := lo; e < hi; e++ {
			assign[e] = p
		}
	}
	return Partition{P: P, Assign: assign}
}

// RandomPartition assigns nonzeros to parts uniformly at random —
// perfectly load balanced in expectation, maximally oblivious to
// structure.
func RandomPartition(c *COO, P int, seed int64) Partition {
	if P < 1 {
		panic(fmt.Sprintf("sparse: P = %d", P))
	}
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, c.NNZ())
	for e := range assign {
		assign[e] = rng.Intn(P)
	}
	return Partition{P: P, Assign: assign}
}

// rowKey identifies a factor row (mode, index).
type rowKey struct{ mode, idx int }

// lambda computes, for every factor row of participating modes, the
// set of parts whose nonzeros touch it.
func lambda(c *COO, part Partition, n int) map[rowKey]map[int]bool {
	out := make(map[rowKey]map[int]bool)
	for e, ent := range c.entries {
		p := part.Assign[e]
		for k := range c.dims {
			key := rowKey{k, ent.Idx[k]}
			if out[key] == nil {
				out[key] = make(map[int]bool)
			}
			out[key][p] = true
		}
		_ = n
	}
	return out
}

// CommVolume returns the total communication volume (in words, for
// rank R factors) of an expand/fold parallelization of mode-n MTTKRP
// under the given nonzero partition, assuming each factor/output row
// is owned by one part:
//
//   - expand: every input row (mode k != n) touched by lambda parts
//     must reach lambda-1 non-owners: (lambda-1)*R words;
//   - fold: every output row (mode n) with contributions from lambda
//     parts needs lambda-1 partial results sent to its owner:
//     (lambda-1)*R words.
//
// This is exactly the (lambda-1) connectivity metric of the hypergraph
// partitioning formulation the paper cites.
func CommVolume(c *COO, part Partition, n, R int) int64 {
	if len(part.Assign) != c.NNZ() {
		panic(fmt.Sprintf("sparse: partition covers %d of %d entries", len(part.Assign), c.NNZ()))
	}
	var vol int64
	for _, parts := range lambda(c, part, n) {
		vol += int64(len(parts)-1) * int64(R) //repro:ignore determinism integer accumulation is exact in any order
	}
	return vol
}

// MaxPartLoad returns the largest number of nonzeros assigned to one
// part (computation balance).
func MaxPartLoad(part Partition) int {
	counts := make([]int, part.P)
	m := 0
	for _, p := range part.Assign {
		counts[p]++
		if counts[p] > m {
			m = counts[p]
		}
	}
	return m
}
