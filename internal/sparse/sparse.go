// Package sparse implements MTTKRP for sparse tensors in coordinate
// (COO) format — the future-work direction the paper's conclusion
// flags: "in this case, the communication requirements depend on the
// nonzero structure and can be expressed in terms of a hypergraph
// partitioning problem" [15], [23].
//
// The package provides the sequential kernel, 1D nonzero partitions,
// the standard (lambda-1) hypergraph connectivity metric that equals
// the communication volume of an expand/fold parallelization, and a
// measured parallel implementation on the simulated machine whose word
// counts match the metric exactly.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// Entry is one nonzero.
type Entry struct {
	Idx []int
	Val float64
}

// COO is a sparse tensor in coordinate format.
type COO struct {
	dims    []int
	entries []Entry
}

// NewCOO creates an empty sparse tensor with the given dimensions.
func NewCOO(dims ...int) *COO {
	if len(dims) < 2 {
		panic(fmt.Sprintf("sparse: need N >= 2 modes, got %v", dims))
	}
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("sparse: bad dims %v", dims))
		}
	}
	return &COO{dims: append([]int(nil), dims...)}
}

// Dims returns a copy of the dimensions.
func (c *COO) Dims() []int { return append([]int(nil), c.dims...) }

// Order returns the number of modes.
func (c *COO) Order() int { return len(c.dims) }

// NNZ returns the nonzero count.
func (c *COO) NNZ() int { return len(c.entries) }

// Entries returns the underlying entries (shared storage).
func (c *COO) Entries() []Entry { return c.entries }

// Append adds a nonzero. Duplicate coordinates are allowed and are
// summed by consumers (standard COO semantics).
func (c *COO) Append(val float64, idx ...int) {
	if len(idx) != len(c.dims) {
		panic(fmt.Sprintf("sparse: index rank %d for order %d", len(idx), len(c.dims)))
	}
	for k, i := range idx {
		if i < 0 || i >= c.dims[k] {
			panic(fmt.Sprintf("sparse: index %v out of dims %v", idx, c.dims))
		}
	}
	c.entries = append(c.entries, Entry{Idx: append([]int(nil), idx...), Val: val})
}

// FromDense extracts entries with |value| > threshold.
func FromDense(x *tensor.Dense, threshold float64) *COO {
	out := NewCOO(x.Dims()...)
	for off, v := range x.Data() {
		if v > threshold || v < -threshold {
			out.entries = append(out.entries, Entry{Idx: x.MultiIndex(off), Val: v})
		}
	}
	return out
}

// ToDense materializes the sparse tensor (duplicates summed).
func (c *COO) ToDense() *tensor.Dense {
	out := tensor.NewDense(c.dims...)
	for _, e := range c.entries {
		out.Set(out.At(e.Idx...)+e.Val, e.Idx...)
	}
	return out
}

// Random generates a sparse tensor with nnz distinct random nonzeros.
func Random(seed int64, nnz int, dims ...int) *COO {
	out := NewCOO(dims...)
	I := 1
	for _, d := range dims {
		I *= d
	}
	if nnz > I {
		panic(fmt.Sprintf("sparse: nnz %d exceeds %d cells", nnz, I))
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int]bool, nnz)
	for len(seen) < nnz {
		off := rng.Intn(I)
		if seen[off] {
			continue
		}
		seen[off] = true
		idx := make([]int, len(dims))
		o := off
		for k, d := range dims {
			idx[k] = o % d
			o /= d
		}
		out.entries = append(out.entries, Entry{Idx: idx, Val: 2*rng.Float64() - 1})
	}
	return out
}

// RandomBlocky generates nonzeros clustered into a few dense-ish
// sub-blocks — the structured case where a contiguous partition has
// far lower communication volume than a random one.
func RandomBlocky(seed int64, blocks, perBlock, blockSide int, dims ...int) *COO {
	out := NewCOO(dims...)
	rng := rand.New(rand.NewSource(seed))
	for b := 0; b < blocks; b++ {
		lo := make([]int, len(dims))
		for k, d := range dims {
			if d > blockSide {
				lo[k] = rng.Intn(d - blockSide)
			}
		}
		for e := 0; e < perBlock; e++ {
			idx := make([]int, len(dims))
			for k := range dims {
				idx[k] = lo[k] + rng.Intn(blockSide)
			}
			out.entries = append(out.entries, Entry{Idx: idx, Val: 2*rng.Float64() - 1})
		}
	}
	return out
}

// MTTKRP computes B(n) for the sparse tensor with atomic per-nonzero
// products (only nonzero iterations contribute, the defining saving of
// the sparse case).
func MTTKRP(c *COO, factors []*tensor.Matrix, n int) *tensor.Matrix {
	N := c.Order()
	if len(factors) != N {
		panic(fmt.Sprintf("sparse: %d factors for order-%d tensor", len(factors), N))
	}
	if n < 0 || n >= N {
		panic(fmt.Sprintf("sparse: mode %d out of range", n))
	}
	R := -1
	for k, f := range factors {
		if k == n {
			continue
		}
		if f == nil || f.Rows() != c.dims[k] {
			panic(fmt.Sprintf("sparse: factor %d bad shape", k))
		}
		if R == -1 {
			R = f.Cols()
		} else if R != f.Cols() {
			panic("sparse: inconsistent rank")
		}
	}
	b := tensor.NewMatrix(c.dims[n], R)
	accumulate(b, c.entries, factors, n, R)
	return b
}

// accumulate is the COO fallback kernel. The factor and output
// column slices are hoisted out of the per-entry loop so the inner
// loops index raw slices instead of going through At/AddAt accessor
// calls (and their bounds checks) once per scalar.
func accumulate(b *tensor.Matrix, entries []Entry, factors []*tensor.Matrix, n, R int) {
	N := len(factors)
	cols := make([][]float64, N*R)
	for k, f := range factors {
		if k == n {
			continue
		}
		for r := 0; r < R; r++ {
			cols[k*R+r] = f.Col(r)
		}
	}
	bcols := make([][]float64, R)
	for r := 0; r < R; r++ {
		bcols[r] = b.Col(r)
	}
	for _, e := range entries {
		i := e.Idx[n]
		for r := 0; r < R; r++ {
			p := e.Val
			for k := 0; k < N; k++ {
				if k == n {
					continue
				}
				p *= cols[k*R+r][e.Idx[k]]
			}
			bcols[r][i] += p
		}
	}
}

// SortLinear orders entries by their column-major linear offset,
// giving contiguous partitions spatial coherence.
func (c *COO) SortLinear() {
	sort.Slice(c.entries, func(a, b int) bool {
		ea, eb := c.entries[a], c.entries[b]
		for k := len(c.dims) - 1; k >= 0; k-- {
			if ea.Idx[k] != eb.Idx[k] {
				return ea.Idx[k] < eb.Idx[k]
			}
		}
		return false
	})
}
