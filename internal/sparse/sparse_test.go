package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
	"repro/internal/tensor"
)

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	x := tensor.RandomDense(1, 4, 5, 3)
	s := FromDense(x, 0)
	if s.NNZ() != x.Elems() {
		t.Fatalf("nnz %d, want all %d", s.NNZ(), x.Elems())
	}
	if !s.ToDense().EqualApprox(x, 0) {
		t.Fatal("round trip failed")
	}
}

func TestFromDenseThreshold(t *testing.T) {
	x := tensor.NewDense(2, 2)
	x.Set(0.5, 0, 0)
	x.Set(0.01, 1, 1)
	s := FromDense(x, 0.1)
	if s.NNZ() != 1 {
		t.Fatalf("nnz = %d, want 1", s.NNZ())
	}
}

func TestSparseMTTKRPMatchesDense(t *testing.T) {
	dims := []int{5, 4, 6}
	R := 3
	s := Random(7, 30, dims...)
	fs := tensor.RandomFactors(8, dims, R)
	x := s.ToDense()
	for n := range dims {
		got := MTTKRP(s, fs, n)
		want := seq.Ref(x, fs, n)
		if !got.EqualApprox(want, 1e-10) {
			t.Fatalf("mode %d mismatch %v", n, got.MaxAbsDiff(want))
		}
	}
}

func TestSparseMTTKRPSumsDuplicates(t *testing.T) {
	s := NewCOO(3, 3)
	s.Append(1, 1, 1)
	s.Append(2, 1, 1) // duplicate coordinate
	fs := tensor.RandomFactors(9, []int{3, 3}, 2)
	got := MTTKRP(s, fs, 0)
	want := seq.Ref(s.ToDense(), fs, 0)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("duplicates not summed")
	}
}

func TestRandomGeneratesDistinct(t *testing.T) {
	s := Random(3, 20, 4, 4, 4)
	if s.NNZ() != 20 {
		t.Fatalf("nnz = %d", s.NNZ())
	}
	seen := make(map[[3]int]bool)
	for _, e := range s.Entries() {
		key := [3]int{e.Idx[0], e.Idx[1], e.Idx[2]}
		if seen[key] {
			t.Fatal("duplicate coordinate from Random")
		}
		seen[key] = true
	}
}

func TestSortLinear(t *testing.T) {
	s := Random(5, 12, 4, 4)
	s.SortLinear()
	prev := -1
	for _, e := range s.Entries() {
		off := e.Idx[0] + 4*e.Idx[1]
		if off < prev {
			t.Fatal("not sorted by linear offset")
		}
		prev = off
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCOO(3) },
		func() { NewCOO(3, 0) },
		func() { NewCOO(3, 3).Append(1, 5, 0) },
		func() { NewCOO(3, 3).Append(1, 0) },
		func() { Random(1, 100, 2, 2) },
		func() { MTTKRP(Random(1, 2, 2, 2), tensor.RandomFactors(1, []int{2, 2}, 2), 5) },
		func() { MTTKRP(Random(1, 2, 2, 2), nil, 0) },
		func() { BlockPartition(Random(1, 2, 2, 2), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: sparse kernel equals dense reference on random sparse
// tensors, all modes.
func TestSparseMatchesDenseQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 2 + rng.Intn(2)
		dims := make([]int, N)
		I := 1
		for i := range dims {
			dims[i] = 2 + rng.Intn(4)
			I *= dims[i]
		}
		nnz := 1 + rng.Intn(I)
		R := 1 + rng.Intn(3)
		s := Random(seed, nnz, dims...)
		fs := tensor.RandomFactors(seed+1, dims, R)
		n := rng.Intn(N)
		return MTTKRP(s, fs, n).EqualApprox(seq.Ref(s.ToDense(), fs, n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
