package sparse

import (
	"sync"
	"sync/atomic"
)

// Workspace holds every buffer the CSF MTTKRP kernels need: row-major
// mirrors of the factor matrices (one per tree level), the row-major
// output accumulator, per-chunk private accumulation buckets for the
// tree reduction, the nnz-balanced chunk boundaries, and per-worker
// walker scratch. Buffers grow monotonically and are reused across
// calls, so an ALS sweep that cycles through the modes of one tensor
// reaches a steady state with zero allocations.
//
// A Workspace is not safe for concurrent use by multiple kernel
// calls; use one per goroutine (or the pool helpers below).
type Workspace struct {
	packed  [][]float64 // per level: I_lv x R row-major factor mirror
	acc     []float64   // bucket 0 and final row-major output accumulator
	priv    []float64   // (nbuf-1) * len(acc) private accumulation buckets
	bufs    [][]float64 // bucket headers handed to kernel.ReduceTree
	bounds  []int32     // chunk boundaries over root fibers (nbuf+1 entries)
	stack   []float64   // workers * 2*N*R walker scratch (subtree sums + prefixes)
	walkers []csfWalker // one traversal state per worker

	// Persistent worker pool. Goroutines are spawned once (lazily,
	// up to the worker count in use) and parked on the start channel;
	// each pass publishes its parameters in the pass* fields and
	// sends one walker-index token per worker, so the steady state
	// allocates nothing — not even the compiler-generated argument
	// closure a per-pass `go f(args)` spawn would cost.
	queue    atomic.Int64 // chunk work queue, drained by all workers
	wg       sync.WaitGroup
	start    chan int // walker-index tokens; closing terminates the pool
	spawned  int      // live pool goroutines (they serve walkers 1..spawned)
	passT    *CSF     // current pass: tree, bucket count, walk kind
	passNbuf int
	passAll  bool
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return new(Workspace) }

// ensure grows every buffer for a kernel pass over t at rank R with
// nbuf accumulation buckets of total words each and the given worker
// count. Existing capacity is kept.
//
//repro:ignore hotpath-alloc grow-only workspace sizing; allocates only while capacity still grows
func (ws *Workspace) ensure(t *CSF, R, workers, nbuf, total int) {
	N := len(t.dims)
	if cap(ws.packed) < N {
		ws.packed = make([][]float64, N)
	}
	ws.packed = ws.packed[:N]
	for lv := 0; lv < N; lv++ {
		ws.packed[lv] = growf(ws.packed[lv], t.dims[t.perm[lv]]*R)
	}
	ws.acc = growf(ws.acc, total)
	if nbuf > 1 {
		ws.priv = growf(ws.priv, (nbuf-1)*total)
	}
	if cap(ws.bufs) < nbuf {
		ws.bufs = make([][]float64, 0, nbuf)
	}
	if cap(ws.bounds) < nbuf+1 {
		ws.bounds = make([]int32, nbuf+1)
	}
	ws.bounds = ws.bounds[:nbuf+1]
	ws.stack = growf(ws.stack, workers*2*N*R)
	if cap(ws.walkers) < workers {
		ws.walkers = make([]csfWalker, workers)
	}
	ws.walkers = ws.walkers[:workers]
	for w := range ws.walkers {
		wk := &ws.walkers[w]
		if cap(wk.outs) < N {
			wk.outs = make([][]float64, N)
		}
		wk.outs = wk.outs[:N]
	}
}

//repro:ignore hotpath-alloc grow-only workspace primitive; allocates only while capacity still grows
func growf(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// ensurePool tops up the persistent worker pool so that workers-1
// goroutines are parked on the start channel (the calling goroutine
// always drains as walker 0). Spawning allocates; once the pool has
// grown, passes reuse it allocation-free.
//
//repro:ignore hotpath-alloc pool spawn: allocates only while the pool still grows
func (ws *Workspace) ensurePool(workers int) {
	if ws.start == nil {
		ws.start = make(chan int, csfChunks)
	}
	for ws.spawned < workers-1 {
		ws.spawned++
		//repro:worker-pool parked CSF workers: woken by start tokens, drained by runChunks' WaitGroup, terminated by Release
		go poolWorker(ws, ws.start)
	}
}

// Release terminates the workspace's persistent worker goroutines.
// The workspace stays usable afterwards — the pool respawns on
// demand. Call it (or PutWorkspace) when dropping a workspace that
// ran multi-worker passes, so no goroutines stay parked on it.
func (ws *Workspace) Release() {
	if ws.start != nil {
		close(ws.start)
		ws.start = nil
		ws.spawned = 0
	}
}

var csfWsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace fetches a CSF workspace from the shared pool.
func GetWorkspace() *Workspace { return csfWsPool.Get().(*Workspace) }

// PutWorkspace releases a workspace's worker pool and returns it to
// the shared pool for reuse (a pool-evicted workspace must not hold
// parked goroutines).
func PutWorkspace(ws *Workspace) {
	ws.Release()
	csfWsPool.Put(ws)
}
