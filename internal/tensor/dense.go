// Package tensor provides dense N-way tensors and factor matrices, the
// data objects on which MTTKRP operates.
//
// Tensors are stored in generalized column-major order (the first index
// varies fastest), matching the convention of the tensor-decomposition
// literature (Kolda & Bader, SIAM Review 2009). Matrices are stored
// column-major for the same reason: factor matrices are tall and skinny
// (I_k x R) and their columns are the rank-one components.
package tensor

import (
	"fmt"
	"math"
)

// Dense is a dense N-way tensor of float64 values in generalized
// column-major layout: element (i_1, ..., i_N) lives at linear offset
// i_1 + I_1*(i_2 + I_2*(i_3 + ...)). Indices are 0-based.
type Dense struct {
	dims    []int
	strides []int
	data    []float64
}

// NewDense allocates a zero tensor with the given dimensions.
// It panics if any dimension is non-positive or the element count
// overflows int.
func NewDense(dims ...int) *Dense {
	n := checkedElems(dims)
	return &Dense{
		dims:    append([]int(nil), dims...),
		strides: stridesOf(dims),
		data:    make([]float64, n),
	}
}

// NewDenseFromData wraps an existing slice as a tensor. The slice is not
// copied; len(data) must equal the product of dims.
func NewDenseFromData(data []float64, dims ...int) *Dense {
	n := checkedElems(dims)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match dims %v (need %d)", len(data), dims, n))
	}
	return &Dense{
		dims:    append([]int(nil), dims...),
		strides: stridesOf(dims),
		data:    data,
	}
}

func checkedElems(dims []int) int {
	if len(dims) == 0 {
		panic("tensor: need at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in %v", dims))
		}
		if n > math.MaxInt/d {
			panic(fmt.Sprintf("tensor: element count overflows for dims %v", dims))
		}
		n *= d
	}
	return n
}

func stridesOf(dims []int) []int {
	s := make([]int, len(dims))
	acc := 1
	for k, d := range dims {
		s[k] = acc
		acc *= d
	}
	return s
}

// Order returns the number of modes N.
func (t *Dense) Order() int { return len(t.dims) }

// Dims returns a copy of the dimension sizes.
func (t *Dense) Dims() []int { return append([]int(nil), t.dims...) }

// Dim returns the size of mode k.
func (t *Dense) Dim(k int) int { return t.dims[k] }

// Elems returns the total number of elements I = I_1 * ... * I_N.
func (t *Dense) Elems() int { return len(t.data) }

// Data returns the underlying column-major storage. Mutating it mutates
// the tensor.
func (t *Dense) Data() []float64 { return t.data }

// Offset converts a multi-index to the linear offset into Data.
func (t *Dense) Offset(idx ...int) int {
	if len(idx) != len(t.dims) {
		panic(fmt.Sprintf("tensor: index rank %d != order %d", len(idx), len(t.dims)))
	}
	off := 0
	for k, i := range idx {
		if i < 0 || i >= t.dims[k] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for dims %v", idx, t.dims))
		}
		off += i * t.strides[k]
	}
	return off
}

// MultiIndex converts a linear offset back to a multi-index, the inverse
// of Offset.
func (t *Dense) MultiIndex(off int) []int {
	if off < 0 || off >= len(t.data) {
		panic(fmt.Sprintf("tensor: offset %d out of range [0,%d)", off, len(t.data)))
	}
	idx := make([]int, len(t.dims))
	for k, d := range t.dims {
		idx[k] = off % d
		off /= d
	}
	return idx
}

// At returns the element at the given multi-index.
func (t *Dense) At(idx ...int) float64 { return t.data[t.Offset(idx...)] }

// Set assigns the element at the given multi-index.
func (t *Dense) Set(v float64, idx ...int) { t.data[t.Offset(idx...)] = v }

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	c := NewDense(t.dims...)
	copy(c.data, t.data)
	return c
}

// Fill sets every element to v.
func (t *Dense) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Norm returns the Frobenius norm sqrt(sum of squares).
func (t *Dense) Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Add accumulates alpha*u into t. Shapes must match.
func (t *Dense) Add(alpha float64, u *Dense) {
	if !sameDims(t.dims, u.dims) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.dims, u.dims))
	}
	for i, v := range u.data {
		t.data[i] += alpha * v
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func (t *Dense) MaxAbsDiff(u *Dense) float64 {
	if !sameDims(t.dims, u.dims) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.dims, u.dims))
	}
	var m float64
	for i := range t.data {
		if d := math.Abs(t.data[i] - u.data[i]); d > m {
			m = d
		}
	}
	return m
}

// EqualApprox reports whether all elements agree within tol.
func (t *Dense) EqualApprox(u *Dense, tol float64) bool {
	return sameDims(t.dims, u.dims) && t.MaxAbsDiff(u) <= tol
}

// SubTensor extracts the block t[lo[0]:hi[0], ..., lo[N-1]:hi[N-1])
// into a freshly allocated tensor.
func (t *Dense) SubTensor(lo, hi []int) *Dense {
	if len(lo) != len(t.dims) || len(hi) != len(t.dims) {
		panic("tensor: SubTensor bounds rank mismatch")
	}
	dims := make([]int, len(t.dims))
	for k := range dims {
		if lo[k] < 0 || hi[k] > t.dims[k] || lo[k] >= hi[k] {
			panic(fmt.Sprintf("tensor: bad SubTensor range [%d,%d) in mode %d of size %d", lo[k], hi[k], k, t.dims[k]))
		}
		dims[k] = hi[k] - lo[k]
	}
	out := NewDense(dims...)
	idx := make([]int, len(dims))
	for off := 0; off < out.Elems(); off++ {
		src := 0
		for k := range idx {
			src += (lo[k] + idx[k]) * t.strides[k]
		}
		out.data[off] = t.data[src]
		incIndex(idx, dims)
	}
	return out
}

// incIndex advances a column-major multi-index by one position.
func incIndex(idx, dims []int) {
	for k := range idx {
		idx[k]++
		if idx[k] < dims[k] {
			return
		}
		idx[k] = 0
	}
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
