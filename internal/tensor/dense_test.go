package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseShape(t *testing.T) {
	x := NewDense(2, 3, 4)
	if x.Order() != 3 {
		t.Fatalf("Order = %d, want 3", x.Order())
	}
	if x.Elems() != 24 {
		t.Fatalf("Elems = %d, want 24", x.Elems())
	}
	if got := x.Dims(); got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Dims = %v", got)
	}
	for k, want := range []int{2, 3, 4} {
		if x.Dim(k) != want {
			t.Fatalf("Dim(%d) = %d, want %d", k, x.Dim(k), want)
		}
	}
}

func TestNewDensePanics(t *testing.T) {
	cases := [][]int{{}, {0}, {3, -1}, {2, 0, 5}}
	for _, dims := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%v) did not panic", dims)
				}
			}()
			NewDense(dims...)
		}()
	}
}

func TestNewDenseFromDataLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewDenseFromData(make([]float64, 5), 2, 3)
}

func TestOffsetColumnMajor(t *testing.T) {
	x := NewDense(2, 3, 4)
	// Column-major: first index fastest.
	if got := x.Offset(0, 0, 0); got != 0 {
		t.Fatalf("Offset(0,0,0) = %d", got)
	}
	if got := x.Offset(1, 0, 0); got != 1 {
		t.Fatalf("Offset(1,0,0) = %d", got)
	}
	if got := x.Offset(0, 1, 0); got != 2 {
		t.Fatalf("Offset(0,1,0) = %d", got)
	}
	if got := x.Offset(0, 0, 1); got != 6 {
		t.Fatalf("Offset(0,0,1) = %d", got)
	}
	if got := x.Offset(1, 2, 3); got != 1+2*2+3*6 {
		t.Fatalf("Offset(1,2,3) = %d", got)
	}
}

func TestOffsetMultiIndexRoundTrip(t *testing.T) {
	x := NewDense(3, 4, 2, 5)
	for off := 0; off < x.Elems(); off++ {
		idx := x.MultiIndex(off)
		if back := x.Offset(idx...); back != off {
			t.Fatalf("round trip failed: off=%d idx=%v back=%d", off, idx, back)
		}
	}
}

func TestAtSet(t *testing.T) {
	x := NewDense(3, 3)
	x.Set(2.5, 1, 2)
	if got := x.At(1, 2); got != 2.5 {
		t.Fatalf("At = %v, want 2.5", got)
	}
	if got := x.At(2, 1); got != 0 {
		t.Fatalf("At(2,1) = %v, want 0", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	x := NewDense(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, 2}, {-1, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := RandomDense(1, 4, 5)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) == 99 {
		t.Fatal("Clone aliases original data")
	}
	y.Set(x.At(0, 0), 0, 0)
	if !x.EqualApprox(y, 0) {
		t.Fatal("Clone differs from original")
	}
}

func TestFillAndNorm(t *testing.T) {
	x := NewDense(2, 2)
	x.Fill(3)
	if got, want := x.Norm(), 6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm = %v, want %v", got, want)
	}
}

func TestAdd(t *testing.T) {
	x := RandomDense(2, 3, 3)
	y := RandomDense(3, 3, 3)
	z := x.Clone()
	z.Add(2, y)
	for off := 0; off < x.Elems(); off++ {
		idx := x.MultiIndex(off)
		want := x.At(idx...) + 2*y.At(idx...)
		if math.Abs(z.At(idx...)-want) > 1e-12 {
			t.Fatalf("Add mismatch at %v", idx)
		}
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).Add(1, NewDense(2, 3))
}

func TestSubTensor(t *testing.T) {
	x := RandomDense(4, 3, 4, 5)
	lo := []int{1, 0, 2}
	hi := []int{3, 2, 5}
	s := x.SubTensor(lo, hi)
	if got := s.Dims(); got[0] != 2 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("SubTensor dims = %v", got)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 3; k++ {
				if s.At(i, j, k) != x.At(lo[0]+i, lo[1]+j, lo[2]+k) {
					t.Fatalf("SubTensor mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestSubTensorFull(t *testing.T) {
	x := RandomDense(5, 3, 4)
	s := x.SubTensor([]int{0, 0}, []int{3, 4})
	if !s.EqualApprox(x, 0) {
		t.Fatal("full SubTensor differs from original")
	}
}

func TestSubTensorBadRangePanics(t *testing.T) {
	x := NewDense(3, 3)
	for _, c := range []struct{ lo, hi []int }{
		{[]int{0, 0}, []int{4, 3}},
		{[]int{2, 0}, []int{2, 3}},
		{[]int{-1, 0}, []int{2, 2}},
		{[]int{0}, []int{2, 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SubTensor(%v,%v) did not panic", c.lo, c.hi)
				}
			}()
			x.SubTensor(c.lo, c.hi)
		}()
	}
}

func TestIncIndexEnumeratesAllOffsets(t *testing.T) {
	dims := []int{3, 2, 4}
	x := NewDense(dims...)
	idx := make([]int, 3)
	for off := 0; off < x.Elems(); off++ {
		if got := x.Offset(idx...); got != off {
			t.Fatalf("incIndex order broken at off=%d idx=%v got=%d", off, idx, got)
		}
		incIndex(idx, dims)
	}
}

// Property: Offset is a bijection [0, I) <-> multi-index space.
func TestOffsetBijectionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		dims := make([]int, n)
		for i := range dims {
			dims[i] = 1 + rng.Intn(4)
		}
		x := NewDense(dims...)
		seen := make(map[int]bool)
		idx := make([]int, n)
		for off := 0; off < x.Elems(); off++ {
			o := x.Offset(idx...)
			if seen[o] {
				return false
			}
			seen[o] = true
			incIndex(idx, dims)
		}
		return len(seen) == x.Elems()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	x := NewDense(2, 2)
	y := NewDense(2, 2)
	y.Set(-3, 1, 1)
	if got := x.MaxAbsDiff(y); got != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestEqualApproxShapeMismatch(t *testing.T) {
	if NewDense(2, 2).EqualApprox(NewDense(4), 1) {
		t.Fatal("EqualApprox should be false for different shapes")
	}
}
