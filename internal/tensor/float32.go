package tensor

import (
	"fmt"
	"math"
)

// Float32 storage mirrors: the memory-bound side of the float32 path.
// Matrix32 and Dense32 hold the same column-major layouts as Matrix
// and Dense with half the bytes per word; values convert on ingest
// (FromMatrix/FromDense or Set) and widen back to float64 on read.
// All arithmetic above this layer accumulates in float64 — the
// engines read float32 streams and store float32 results, nothing
// else changes (see DESIGN.md §10).

// Matrix32 is a dense column-major float32 matrix.
type Matrix32 struct {
	rows, cols int
	data       []float32 // data[i + r*rows]
}

// NewMatrix32 allocates a zero rows x cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: non-positive matrix shape %dx%d", rows, cols))
	}
	if rows > math.MaxInt/cols {
		panic(fmt.Sprintf("tensor: matrix %dx%d overflows", rows, cols))
	}
	return &Matrix32{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// NewMatrix32FromData wraps a column-major slice; len(data) must be
// rows*cols.
func NewMatrix32FromData(data []float32, rows, cols int) *Matrix32 {
	if rows <= 0 || cols <= 0 || len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix32{rows: rows, cols: cols, data: data}
}

// Matrix32FromMatrix converts a float64 matrix on ingest, rounding
// every element once.
func Matrix32FromMatrix(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = float32(v)
	}
	return out
}

// Rows returns the row count.
func (m *Matrix32) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix32) Cols() int { return m.cols }

// Data returns the underlying column-major float32 storage.
func (m *Matrix32) Data() []float32 { return m.data }

// At returns element (i, j) widened to float64.
func (m *Matrix32) At(i, j int) float64 {
	m.check(i, j)
	return float64(m.data[i+j*m.rows])
}

// Set assigns element (i, j), rounding to float32.
func (m *Matrix32) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i+j*m.rows] = float32(v)
}

func (m *Matrix32) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: matrix index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Col returns column j as a slice aliasing the matrix storage.
func (m *Matrix32) Col(j int) []float32 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: column %d out of %d", j, m.cols))
	}
	return m.data[j*m.rows : (j+1)*m.rows]
}

// ToMatrix widens the matrix back to float64 storage.
func (m *Matrix32) ToMatrix() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = float64(v)
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference
// against a float64 matrix, computed in float64.
func (m *Matrix32) MaxAbsDiff(u *Matrix) float64 {
	if m.rows != u.rows || m.cols != u.cols {
		panic(fmt.Sprintf("tensor: matrix shape mismatch %dx%d vs %dx%d", m.rows, m.cols, u.rows, u.cols))
	}
	var d float64
	for i := range m.data {
		if a := math.Abs(float64(m.data[i]) - u.data[i]); a > d {
			d = a
		}
	}
	return d
}

// Dense32 is a dense N-way float32 tensor in the same generalized
// column-major layout as Dense.
type Dense32 struct {
	dims    []int
	strides []int
	data    []float32
}

// NewDense32 allocates a zero float32 tensor with the given
// dimensions.
func NewDense32(dims ...int) *Dense32 {
	n := checkedElems(dims)
	return &Dense32{
		dims:    append([]int(nil), dims...),
		strides: stridesOf(dims),
		data:    make([]float32, n),
	}
}

// Dense32FromDense converts a float64 tensor on ingest, rounding
// every element once.
func Dense32FromDense(t *Dense) *Dense32 {
	out := NewDense32(t.dims...)
	for i, v := range t.data {
		out.data[i] = float32(v)
	}
	return out
}

// Order returns the number of modes N.
func (t *Dense32) Order() int { return len(t.dims) }

// Dims returns a copy of the dimension sizes.
func (t *Dense32) Dims() []int { return append([]int(nil), t.dims...) }

// Dim returns the size of mode k.
func (t *Dense32) Dim(k int) int { return t.dims[k] }

// Elems returns the total number of elements.
func (t *Dense32) Elems() int { return len(t.data) }

// Data returns the underlying column-major float32 storage.
func (t *Dense32) Data() []float32 { return t.data }

// ToDense widens the tensor back to float64 storage.
func (t *Dense32) ToDense() *Dense {
	out := NewDense(t.dims...)
	for i, v := range t.data {
		out.data[i] = float64(v)
	}
	return out
}
