package tensor

import "fmt"

// KRP returns the Khatri-Rao (columnwise Kronecker) product of two
// matrices with the same column count: row index (i, j) of the result
// has j (from b) varying fastest, i.e.
//
//	(a krp b)(i*b.rows + j, r) = a(i, r) * b(j, r).
func KRP(a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: KRP column mismatch %d vs %d", a.cols, b.cols))
	}
	out := NewMatrix(a.rows*b.rows, a.cols)
	for r := 0; r < a.cols; r++ {
		ac, bc, oc := a.Col(r), b.Col(r), out.Col(r)
		for i := 0; i < a.rows; i++ {
			av := ac[i]
			base := i * b.rows
			for j := 0; j < b.rows; j++ {
				oc[base+j] = av * bc[j]
			}
		}
	}
	return out
}

// KRPAll returns A(N) krp A(N-1) krp ... krp A(1) skipping mode n, the
// Khatri-Rao product whose row ordering matches Unfold's column
// ordering (smallest mode varying fastest). factors must have length N
// (the order of the tensor); factors[n] is ignored and may be nil.
//
// The result has (prod_{k != n} I_k) rows, and row j, column r equals
// prod_{k != n} A(k)(i_k, r) where j flattens (i_1, ..., i_N) without
// i_n, smallest mode fastest.
func KRPAll(factors []*Matrix, n int) *Matrix {
	N := len(factors)
	if n < 0 || n >= N {
		panic(fmt.Sprintf("tensor: KRPAll mode %d out of range for %d factors", n, N))
	}
	var acc *Matrix
	// Accumulate from the largest mode downward so the smallest mode
	// ends up rightmost (fastest-varying row index).
	for k := N - 1; k >= 0; k-- {
		if k == n {
			continue
		}
		if factors[k] == nil {
			panic(fmt.Sprintf("tensor: KRPAll factor %d is nil", k))
		}
		if acc == nil {
			acc = factors[k].Clone()
		} else {
			acc = KRP(acc, factors[k])
		}
	}
	if acc == nil {
		panic("tensor: KRPAll needs at least one participating factor")
	}
	return acc
}

// KRPRow fills dst[r] = prod_{k != n} A(k)(idx[k], r) for r in [0, R),
// the single Khatri-Rao row for the given tensor multi-index. It is the
// atomic (N-1)-ary product of Definition 2.1 evaluated for all r.
func KRPRow(dst []float64, factors []*Matrix, n int, idx []int) {
	R := len(dst)
	for r := 0; r < R; r++ {
		p := 1.0
		for k, f := range factors {
			if k == n {
				continue
			}
			p *= f.data[idx[k]+r*f.rows]
		}
		dst[r] = p
	}
}
