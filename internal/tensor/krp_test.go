package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKRPHand(t *testing.T) {
	a := NewMatrixFromData([]float64{1, 2, 3, 4}, 2, 2) // cols: [1 2], [3 4]
	b := NewMatrixFromData([]float64{5, 6, 7, 8}, 2, 2) // cols: [5 6], [7 8]
	k := KRP(a, b)
	if k.Rows() != 4 || k.Cols() != 2 {
		t.Fatalf("KRP shape %dx%d", k.Rows(), k.Cols())
	}
	// Column 0: a(:,0) kron b(:,0) = [1*5, 1*6, 2*5, 2*6].
	want0 := []float64{5, 6, 10, 12}
	for i, w := range want0 {
		if k.At(i, 0) != w {
			t.Fatalf("KRP col0[%d] = %v, want %v", i, k.At(i, 0), w)
		}
	}
	want1 := []float64{21, 24, 28, 32}
	for i, w := range want1 {
		if k.At(i, 1) != w {
			t.Fatalf("KRP col1[%d] = %v, want %v", i, k.At(i, 1), w)
		}
	}
}

func TestKRPColumnMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KRP(NewMatrix(2, 2), NewMatrix(2, 3))
}

// The defining identity: X_(n) = A(n) * KRPAll(factors, n)^T for an
// exact CP tensor. This pins down both the unfolding and the KRP row
// ordering simultaneously.
func TestUnfoldKRPIdentity(t *testing.T) {
	dimsets := [][]int{{3, 4}, {2, 3, 4}, {3, 2, 2, 3}}
	for _, dims := range dimsets {
		R := 3
		fs := RandomFactors(42, dims, R)
		x := FromFactors(fs)
		for n := range dims {
			xn := Unfold(x, n)
			krp := KRPAll(fs, n)
			// Check X_(n)(i, j) == sum_r A(n)(i,r) * krp(j, r).
			for i := 0; i < xn.Rows(); i++ {
				for j := 0; j < xn.Cols(); j++ {
					var s float64
					for r := 0; r < R; r++ {
						s += fs[n].At(i, r) * krp.At(j, r)
					}
					if math.Abs(s-xn.At(i, j)) > 1e-10 {
						t.Fatalf("identity fails dims=%v mode=%d at (%d,%d): %v vs %v",
							dims, n, i, j, s, xn.At(i, j))
					}
				}
			}
		}
	}
}

func TestKRPAllShape(t *testing.T) {
	dims := []int{3, 4, 5}
	fs := RandomFactors(7, dims, 2)
	for n := range dims {
		k := KRPAll(fs, n)
		want := 1
		for m, d := range dims {
			if m != n {
				want *= d
			}
		}
		if k.Rows() != want || k.Cols() != 2 {
			t.Fatalf("KRPAll mode %d shape %dx%d, want %dx2", n, k.Rows(), k.Cols(), want)
		}
	}
}

func TestKRPAllSkipsNilFactor(t *testing.T) {
	dims := []int{3, 4}
	fs := RandomFactors(7, dims, 2)
	fs[1] = nil // mode being computed may be nil
	k := KRPAll(fs, 1)
	if k.Rows() != 3 || k.Cols() != 2 {
		t.Fatalf("KRPAll shape %dx%d", k.Rows(), k.Cols())
	}
}

func TestKRPAllPanics(t *testing.T) {
	fs := RandomFactors(7, []int{3, 4}, 2)
	for _, f := range []func(){
		func() { KRPAll(fs, 2) },
		func() { KRPAll(fs, -1) },
		func() { KRPAll([]*Matrix{nil, fs[1]}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: KRPRow matches the corresponding row of the explicit KRPAll.
func TestKRPRowMatchesExplicitQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 2 + rng.Intn(3)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 1 + rng.Intn(4)
		}
		R := 1 + rng.Intn(3)
		fs := RandomFactors(seed, dims, R)
		n := rng.Intn(nd)
		krp := KRPAll(fs, n)
		idx := make([]int, nd)
		for k := range idx {
			idx[k] = rng.Intn(dims[k])
		}
		// Row index in krp: flatten idx without mode n, smallest fastest.
		j, mult := 0, 1
		for k := 0; k < nd; k++ {
			if k == n {
				continue
			}
			j += idx[k] * mult
			mult *= dims[k]
		}
		row := make([]float64, R)
		KRPRow(row, fs, n, idx)
		for r := 0; r < R; r++ {
			if math.Abs(row[r]-krp.At(j, r)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromFactorsRankOne(t *testing.T) {
	a := NewMatrixFromData([]float64{1, 2}, 2, 1)
	b := NewMatrixFromData([]float64{3, 4, 5}, 3, 1)
	x := FromFactors([]*Matrix{a, b})
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			want := a.At(i, 0) * b.At(j, 0)
			if x.At(i, j) != want {
				t.Fatalf("rank-one mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromFactorsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { FromFactors(nil) },
		func() { FromFactors([]*Matrix{NewMatrix(2, 2), NewMatrix(3, 3)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := RandomDense(5, 3, 3)
	b := RandomDense(5, 3, 3)
	if !a.EqualApprox(b, 0) {
		t.Fatal("RandomDense not deterministic for equal seeds")
	}
	c := RandomDense(6, 3, 3)
	if a.EqualApprox(c, 0) {
		t.Fatal("RandomDense identical for different seeds")
	}
}

func TestAddNoiseBounded(t *testing.T) {
	x := NewDense(10, 10)
	AddNoise(x, 3, 0.5)
	for _, v := range x.Data() {
		if math.Abs(v) > 0.5 {
			t.Fatalf("noise %v exceeds half-width", v)
		}
	}
}
