package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense column-major matrix. Factor matrices A(k) are
// I_k x R; column r is the r-th rank-one component for mode k.
type Matrix struct {
	rows, cols int
	data       []float64 // data[i + r*rows]
}

// NewMatrix allocates a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: non-positive matrix shape %dx%d", rows, cols))
	}
	if rows > math.MaxInt/cols {
		panic(fmt.Sprintf("tensor: matrix %dx%d overflows", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromData wraps a column-major slice; len(data) must be rows*cols.
func NewMatrixFromData(data []float64, rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 || len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Data returns the underlying column-major storage.
func (m *Matrix) Data() []float64 { return m.data }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i+j*m.rows]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i+j*m.rows] = v
}

// AddAt accumulates v into element (i, j).
func (m *Matrix) AddAt(i, j int, v float64) {
	m.check(i, j)
	m.data[i+j*m.rows] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: matrix index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Col returns column j as a slice aliasing the matrix storage.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("tensor: column %d out of %d", j, m.cols))
	}
	return m.data[j*m.rows : (j+1)*m.rows]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Zero resets all elements to 0.
func (m *Matrix) Zero() { m.Fill(0) }

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func (m *Matrix) MaxAbsDiff(u *Matrix) float64 {
	if m.rows != u.rows || m.cols != u.cols {
		panic(fmt.Sprintf("tensor: matrix shape mismatch %dx%d vs %dx%d", m.rows, m.cols, u.rows, u.cols))
	}
	var d float64
	for i := range m.data {
		if a := math.Abs(m.data[i] - u.data[i]); a > d {
			d = a
		}
	}
	return d
}

// EqualApprox reports whether all elements agree within tol.
func (m *Matrix) EqualApprox(u *Matrix, tol float64) bool {
	if m.rows != u.rows || m.cols != u.cols {
		return false
	}
	return m.MaxAbsDiff(u) <= tol
}

// RowBlock copies rows [lo, hi) into a new (hi-lo) x cols matrix.
func (m *Matrix) RowBlock(lo, hi int) *Matrix {
	if lo < 0 || hi > m.rows || lo >= hi {
		panic(fmt.Sprintf("tensor: bad row block [%d,%d) of %d rows", lo, hi, m.rows))
	}
	out := NewMatrix(hi-lo, m.cols)
	for j := 0; j < m.cols; j++ {
		copy(out.Col(j), m.Col(j)[lo:hi])
	}
	return out
}

// Block copies the submatrix rows [rlo,rhi) x cols [clo,chi).
func (m *Matrix) Block(rlo, rhi, clo, chi int) *Matrix {
	if rlo < 0 || rhi > m.rows || rlo >= rhi || clo < 0 || chi > m.cols || clo >= chi {
		panic(fmt.Sprintf("tensor: bad block [%d,%d)x[%d,%d) of %dx%d", rlo, rhi, clo, chi, m.rows, m.cols))
	}
	out := NewMatrix(rhi-rlo, chi-clo)
	for j := clo; j < chi; j++ {
		copy(out.Col(j-clo), m.Col(j)[rlo:rhi])
	}
	return out
}

// SetBlock writes src into m starting at (rlo, clo).
func (m *Matrix) SetBlock(rlo, clo int, src *Matrix) {
	if rlo < 0 || rlo+src.rows > m.rows || clo < 0 || clo+src.cols > m.cols {
		panic(fmt.Sprintf("tensor: block %dx%d at (%d,%d) exceeds %dx%d", src.rows, src.cols, rlo, clo, m.rows, m.cols))
	}
	for j := 0; j < src.cols; j++ {
		copy(m.Col(clo + j)[rlo:rlo+src.rows], src.Col(j))
	}
}

// Add accumulates alpha*u into m.
func (m *Matrix) Add(alpha float64, u *Matrix) {
	if m.rows != u.rows || m.cols != u.cols {
		panic(fmt.Sprintf("tensor: matrix shape mismatch %dx%d vs %dx%d", m.rows, m.cols, u.rows, u.cols))
	}
	for i, v := range u.data {
		m.data[i] += alpha * v
	}
}

// Hadamard returns the elementwise product of a and b.
func Hadamard(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("tensor: hadamard shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewMatrix(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}
