package tensor

import (
	"math"
	"testing"
)

func TestMatrixColumnMajorLayout(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(0, 1, 7)
	if m.Data()[3] != 7 {
		t.Fatalf("element (0,1) not at offset rows*1: data=%v", m.Data())
	}
	if m.At(0, 1) != 7 {
		t.Fatalf("At(0,1) = %v", m.At(0, 1))
	}
}

func TestMatrixColAliases(t *testing.T) {
	m := NewMatrix(4, 3)
	c := m.Col(2)
	c[1] = 5
	if m.At(1, 2) != 5 {
		t.Fatal("Col does not alias matrix storage")
	}
}

func TestMatrixAddAt(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddAt(1, 0, 2)
	m.AddAt(1, 0, 3)
	if m.At(1, 0) != 5 {
		t.Fatalf("AddAt accumulated %v, want 5", m.At(1, 0))
	}
}

func TestMatrixRowBlock(t *testing.T) {
	m := RandomMatrix(7, 6, 3)
	b := m.RowBlock(2, 5)
	if b.Rows() != 3 || b.Cols() != 3 {
		t.Fatalf("RowBlock shape %dx%d", b.Rows(), b.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b.At(i, j) != m.At(2+i, j) {
				t.Fatalf("RowBlock mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixBlockAndSetBlock(t *testing.T) {
	m := RandomMatrix(11, 5, 6)
	b := m.Block(1, 4, 2, 5)
	if b.Rows() != 3 || b.Cols() != 3 {
		t.Fatalf("Block shape %dx%d", b.Rows(), b.Cols())
	}
	n := NewMatrix(5, 6)
	n.SetBlock(1, 2, b)
	for i := 1; i < 4; i++ {
		for j := 2; j < 5; j++ {
			if n.At(i, j) != m.At(i, j) {
				t.Fatalf("SetBlock mismatch at (%d,%d)", i, j)
			}
		}
	}
	if n.At(0, 0) != 0 {
		t.Fatal("SetBlock wrote outside target region")
	}
}

func TestMatrixHadamard(t *testing.T) {
	a := RandomMatrix(1, 3, 4)
	b := RandomMatrix(2, 3, 4)
	h := Hadamard(a, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			want := a.At(i, j) * b.At(i, j)
			if math.Abs(h.At(i, j)-want) > 1e-15 {
				t.Fatalf("Hadamard mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixHadamardMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Hadamard(NewMatrix(2, 2), NewMatrix(2, 3))
}

func TestMatrixAdd(t *testing.T) {
	a := RandomMatrix(5, 3, 2)
	b := RandomMatrix(6, 3, 2)
	c := a.Clone()
	c.Add(-1, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			want := a.At(i, j) - b.At(i, j)
			if math.Abs(c.At(i, j)-want) > 1e-15 {
				t.Fatalf("Add mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixNorm(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(2)
	if got := m.Norm(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Norm = %v, want 4", got)
	}
}

func TestMatrixBoundsPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Col(2) },
		func() { m.RowBlock(1, 1) },
		func() { m.Block(0, 3, 0, 1) },
		func() { m.SetBlock(1, 1, NewMatrix(2, 2)) },
		func() { NewMatrix(0, 3) },
		func() { NewMatrixFromData(make([]float64, 3), 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMatrixEqualApprox(t *testing.T) {
	a := RandomMatrix(9, 4, 4)
	b := a.Clone()
	b.AddAt(3, 3, 1e-9)
	if !a.EqualApprox(b, 1e-8) {
		t.Fatal("should be equal within 1e-8")
	}
	if a.EqualApprox(b, 1e-10) {
		t.Fatal("should differ at 1e-10")
	}
	if a.EqualApprox(NewMatrix(4, 5), 1) {
		t.Fatal("different shapes should not be equal")
	}
}
