package tensor

import (
	"fmt"
	"math/rand"
)

// RandomDense returns a tensor with elements drawn uniformly from
// [-1, 1) using the deterministic source seeded by seed.
func RandomDense(seed int64, dims ...int) *Dense {
	rng := rand.New(rand.NewSource(seed))
	t := NewDense(dims...)
	for i := range t.data {
		t.data[i] = 2*rng.Float64() - 1
	}
	return t
}

// RandomMatrix returns a rows x cols matrix with elements drawn
// uniformly from [-1, 1).
func RandomMatrix(seed int64, rows, cols int) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.data {
		m.data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomFactors returns N random factor matrices of shapes dims[k] x R,
// seeded deterministically per mode.
func RandomFactors(seed int64, dims []int, R int) []*Matrix {
	fs := make([]*Matrix, len(dims))
	for k, d := range dims {
		fs[k] = RandomMatrix(seed+int64(k)*7919, d, R)
	}
	return fs
}

// FromFactors materializes the rank-R tensor
// X(i) = sum_r prod_k A(k)(i_k, r) defined by the factor matrices.
func FromFactors(factors []*Matrix) *Dense {
	N := len(factors)
	if N == 0 {
		panic("tensor: FromFactors needs at least one factor")
	}
	R := factors[0].cols
	dims := make([]int, N)
	for k, f := range factors {
		if f.cols != R {
			panic(fmt.Sprintf("tensor: factor %d has %d columns, want %d", k, f.cols, R))
		}
		dims[k] = f.rows
	}
	t := NewDense(dims...)
	idx := make([]int, N)
	for off := range t.data {
		var s float64
		for r := 0; r < R; r++ {
			p := 1.0
			for k, f := range factors {
				p *= f.data[idx[k]+r*f.rows]
			}
			s += p
		}
		t.data[off] = s
		incIndex(idx, dims)
	}
	return t
}

// AddNoise perturbs t in place with uniform noise of half-width eps.
func AddNoise(t *Dense, seed int64, eps float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range t.data {
		t.data[i] += eps * (2*rng.Float64() - 1)
	}
}
