package tensor

import "fmt"

// Unfold returns the mode-n matricization X_(n) of size I_n x (I / I_n).
//
// Column j of X_(n) corresponds to the multi-index (i_1, ..., i_N) with
// i_n removed, flattened with the *smallest remaining mode varying
// fastest* (the Kolda-Bader convention), so that
//
//	X_(n) = B(n) * (A(N) krp ... krp A(n+1) krp A(n-1) krp ... krp A(1))^T
//
// holds for an exact CP representation.
func Unfold(t *Dense, n int) *Matrix {
	N := t.Order()
	if n < 0 || n >= N {
		panic(fmt.Sprintf("tensor: unfold mode %d out of range for order %d", n, N))
	}
	rows := t.dims[n]
	cols := t.Elems() / rows
	out := NewMatrix(rows, cols)
	dims := t.dims
	idx := make([]int, N)
	for off, v := range t.data {
		// Column index: flatten all modes except n, smallest mode fastest.
		col := 0
		mult := 1
		for k := 0; k < N; k++ {
			if k == n {
				continue
			}
			col += idx[k] * mult
			mult *= dims[k]
		}
		out.data[idx[n]+col*rows] = v
		_ = off
		incIndex(idx, dims)
	}
	return out
}

// Fold is the inverse of Unfold: it reassembles a tensor of shape dims
// from its mode-n matricization.
func Fold(m *Matrix, n int, dims []int) *Dense {
	N := len(dims)
	if n < 0 || n >= N {
		panic(fmt.Sprintf("tensor: fold mode %d out of range for order %d", n, N))
	}
	t := NewDense(dims...)
	if m.rows != dims[n] || m.cols != t.Elems()/dims[n] {
		panic(fmt.Sprintf("tensor: fold shape %dx%d does not match dims %v mode %d", m.rows, m.cols, dims, n))
	}
	idx := make([]int, N)
	for off := range t.data {
		col := 0
		mult := 1
		for k := 0; k < N; k++ {
			if k == n {
				continue
			}
			col += idx[k] * mult
			mult *= dims[k]
		}
		t.data[off] = m.data[idx[n]+col*m.rows]
		incIndex(idx, dims)
	}
	return t
}
