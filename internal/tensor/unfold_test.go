package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnfoldShapes(t *testing.T) {
	x := RandomDense(3, 2, 3, 4)
	for n := 0; n < 3; n++ {
		m := Unfold(x, n)
		if m.Rows() != x.Dim(n) || m.Cols() != x.Elems()/x.Dim(n) {
			t.Fatalf("mode %d unfold shape %dx%d", n, m.Rows(), m.Cols())
		}
	}
}

// Hand-checked 2x2x2 example of the Kolda-Bader unfolding convention.
func TestUnfoldMode0Hand(t *testing.T) {
	x := NewDense(2, 2, 2)
	// Fill with linear offsets so layout is visible.
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	m := Unfold(x, 0)
	// Columns of X_(0) are indexed by (i2, i3) with i2 fastest:
	// col 0 = (0,0): elements offsets 0,1; col 1 = (1,0): offsets 2,3;
	// col 2 = (0,1): offsets 4,5; col 3 = (1,1): offsets 6,7.
	want := [][]float64{{0, 2, 4, 6}, {1, 3, 5, 7}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("X_(0)(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestUnfoldMode1Hand(t *testing.T) {
	x := NewDense(2, 2, 2)
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	m := Unfold(x, 1)
	// Columns indexed by (i1, i3), i1 fastest:
	// col 0 = (0,0): offsets 0 (i2=0), 2 (i2=1)... X(i1=0,i2,i3=0).
	want := [][]float64{{0, 1, 4, 5}, {2, 3, 6, 7}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("X_(1)(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestFoldInvertsUnfold(t *testing.T) {
	dimsets := [][]int{{2, 3}, {3, 2, 4}, {2, 2, 2, 3}, {5, 1, 3}}
	for _, dims := range dimsets {
		x := RandomDense(int64(len(dims)), dims...)
		for n := range dims {
			y := Fold(Unfold(x, n), n, dims)
			if !x.EqualApprox(y, 0) {
				t.Fatalf("Fold(Unfold) != identity for dims %v mode %d", dims, n)
			}
		}
	}
}

// Property: every element appears exactly once in the unfolding.
func TestUnfoldPreservesElementsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 2 + rng.Intn(3)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 1 + rng.Intn(4)
		}
		x := RandomDense(seed, dims...)
		n := rng.Intn(nd)
		m := Unfold(x, n)
		// Compare multisets via sums of powers (cheap fingerprint).
		var s1, s2, q1, q2 float64
		for _, v := range x.Data() {
			s1 += v
			q1 += v * v
		}
		for _, v := range m.Data() {
			s2 += v
			q2 += v * v
		}
		return abs(s1-s2) < 1e-9 && abs(q1-q2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestUnfoldFoldPanics(t *testing.T) {
	x := NewDense(2, 2)
	for _, f := range []func(){
		func() { Unfold(x, 2) },
		func() { Unfold(x, -1) },
		func() { Fold(NewMatrix(2, 2), 2, []int{2, 2}) },
		func() { Fold(NewMatrix(3, 2), 0, []int{2, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
