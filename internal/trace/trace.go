// Package trace generates memory-address traces for MTTKRP loop
// orderings. Together with package cachesim it provides a second,
// independent measurement path for the sequential I/O model: instead
// of an algorithm explicitly managing fast memory (package seq), the
// trace of a loop ordering is replayed through an LRU-managed fast
// memory and the resulting misses/write-backs are compared against the
// same lower bounds. The blocked ordering of Algorithm 2 should remain
// near-optimal even under LRU replacement — caches reward locality,
// not explicit orchestration — while orderings with poor locality pay.
//
// Address space layout (word-granularity, one float64 per address):
//
//	[0, I)                     tensor X, column-major
//	[I, I + I_k*R) per mode    factor matrices A(k), column-major
//	last segment               output B(n)
package trace

import (
	"fmt"
	"math/rand"
)

// Access is one word-granularity memory access.
type Access struct {
	Addr  uint64
	Write bool
}

// Layout maps MTTKRP operands to disjoint address ranges.
type Layout struct {
	Dims []int
	R    int
	N    int

	xBase uint64
	aBase []uint64 // per mode
	bBase uint64
	total uint64
}

// NewLayout builds the address layout for an MTTKRP of the given shape
// computing mode n (the output segment sized I_n x R).
func NewLayout(dims []int, R, n int) *Layout {
	if len(dims) < 2 {
		panic(fmt.Sprintf("trace: need N >= 2, got %v", dims))
	}
	if R < 1 {
		panic(fmt.Sprintf("trace: rank %d", R))
	}
	if n < 0 || n >= len(dims) {
		panic(fmt.Sprintf("trace: mode %d out of range", n))
	}
	l := &Layout{Dims: append([]int(nil), dims...), R: R, N: len(dims)}
	var at uint64
	l.xBase = at
	I := uint64(1)
	for _, d := range dims {
		I *= uint64(d)
	}
	at += I
	l.aBase = make([]uint64, len(dims))
	for k, d := range dims {
		l.aBase[k] = at
		at += uint64(d) * uint64(R)
	}
	// B(n) gets its own segment after all inputs.
	l.bBase = at
	at += uint64(dims[n]) * uint64(R)
	l.total = at
	return l
}

// Words returns the total distinct addresses (problem footprint).
func (l *Layout) Words() uint64 { return l.total }

// XAddr returns the address of X(idx...).
func (l *Layout) XAddr(idx []int) uint64 {
	off := uint64(0)
	mult := uint64(1)
	for k, d := range l.Dims {
		off += uint64(idx[k]) * mult
		mult *= uint64(d)
	}
	return l.xBase + off
}

// AAddr returns the address of A(k)(i, r).
func (l *Layout) AAddr(k, i, r int) uint64 {
	return l.aBase[k] + uint64(i) + uint64(r)*uint64(l.Dims[k])
}

// BAddr returns the address of B(n)(i, r) (n fixed at layout build).
func (l *Layout) BAddr(nDim, i, r int) uint64 {
	return l.bBase + uint64(i) + uint64(r)*uint64(l.Dims[nDim])
}

// iteration emits the accesses of one (i, r) loop iteration: read the
// tensor entry and the N-1 factor entries, then read-modify-write the
// output entry. This is the access pattern of one atomic N-ary
// multiply-accumulate, shared by all orderings.
func (l *Layout) iteration(n int, idx []int, r int, emit func(Access)) {
	emit(Access{Addr: l.XAddr(idx)})
	for k := range l.Dims {
		if k == n {
			continue
		}
		emit(Access{Addr: l.AAddr(k, idx[k], r)})
	}
	b := l.BAddr(n, idx[n], r)
	emit(Access{Addr: b})
	emit(Access{Addr: b, Write: true})
}

// Unblocked emits the Algorithm 1 ordering: column-major over the
// tensor, innermost loop over r.
func Unblocked(l *Layout, n int, emit func(Access)) {
	idx := make([]int, l.N)
	I := 1
	for _, d := range l.Dims {
		I *= d
	}
	for c := 0; c < I; c++ {
		for r := 0; r < l.R; r++ {
			l.iteration(n, idx, r, emit)
		}
		inc(idx, l.Dims)
	}
}

// Blocked emits the Algorithm 2 ordering with block size b: blocks in
// column-major order; within a block, r outermost, then column-major
// over the block.
func Blocked(l *Layout, n, b int, emit func(Access)) {
	if b < 1 {
		panic(fmt.Sprintf("trace: block size %d", b))
	}
	nblk := make([]int, l.N)
	for k, d := range l.Dims {
		nblk[k] = (d + b - 1) / b
	}
	blk := make([]int, l.N)
	lo := make([]int, l.N)
	hi := make([]int, l.N)
	idx := make([]int, l.N)
	for {
		for k := 0; k < l.N; k++ {
			lo[k] = blk[k] * b
			hi[k] = min(lo[k]+b, l.Dims[k])
		}
		for r := 0; r < l.R; r++ {
			copy(idx, lo)
			for {
				l.iteration(n, idx, r, emit)
				done := true
				for k := 0; k < l.N; k++ {
					idx[k]++
					if idx[k] < hi[k] {
						done = false
						break
					}
					idx[k] = lo[k]
				}
				if done {
					break
				}
			}
		}
		done := true
		for k := 0; k < l.N; k++ {
			blk[k]++
			if blk[k] < nblk[k] {
				done = false
				break
			}
			blk[k] = 0
		}
		if done {
			return
		}
	}
}

// Morton emits the iterations in Z-curve (Morton) order over the
// (i_1, ..., i_N, r) iteration space: bits of the coordinates are
// interleaved, so the traversal is recursively blocked at every scale
// at once — a cache-oblivious ordering that needs no tuned block size.
// Under LRU it should track the best explicitly-blocked ordering
// across all fast-memory sizes simultaneously.
func Morton(l *Layout, n int, emit func(Access)) {
	dims := append(append([]int(nil), l.Dims...), l.R)
	// Bits needed per coordinate.
	nb := make([]int, len(dims))
	maxBits := 0
	for k, d := range dims {
		for 1<<nb[k] < d {
			nb[k]++
		}
		if nb[k] > maxBits {
			maxBits = nb[k]
		}
	}
	total := uint64(1) << uint(maxBits*len(dims))
	idx := make([]int, l.N)
	for code := uint64(0); code < total; code++ {
		// De-interleave: bit b of coordinate k sits at position
		// b*len(dims)+k of the code.
		ok := true
		r := 0
		for k := range dims {
			v := 0
			for b := 0; b < maxBits; b++ {
				if code&(1<<uint(b*len(dims)+k)) != 0 {
					v |= 1 << uint(b)
				}
			}
			if v >= dims[k] {
				ok = false
				break
			}
			if k < l.N {
				idx[k] = v
			} else {
				r = v
			}
		}
		if ok {
			l.iteration(n, idx, r, emit)
		}
	}
}

// Random emits the iterations in a uniformly random order — the
// worst-case locality baseline. Deterministic for a given seed.
func Random(l *Layout, n int, seed int64, emit func(Access)) {
	I := 1
	for _, d := range l.Dims {
		I *= d
	}
	total := I * l.R
	perm := rand.New(rand.NewSource(seed)).Perm(total)
	idx := make([]int, l.N)
	for _, p := range perm {
		c := p / l.R
		r := p % l.R
		for k, d := range l.Dims {
			idx[k] = c % d
			c /= d
		}
		l.iteration(n, idx, r, emit)
	}
}

// Collect materializes a trace into a slice.
func Collect(gen func(emit func(Access))) []Access {
	var out []Access
	gen(func(a Access) { out = append(out, a) })
	return out
}

func inc(idx, dims []int) {
	for k := range idx {
		idx[k]++
		if idx[k] < dims[k] {
			return
		}
		idx[k] = 0
	}
}
