package trace

import (
	"testing"
)

func TestLayoutDisjointSegments(t *testing.T) {
	l := NewLayout([]int{3, 4, 5}, 2, 1)
	seen := make(map[uint64]string)
	record := func(addr uint64, what string) {
		if prev, ok := seen[addr]; ok && prev != what {
			t.Fatalf("address %d shared by %s and %s", addr, prev, what)
		}
		seen[addr] = what
	}
	idx := []int{0, 0, 0}
	for c := 0; c < 60; c++ {
		record(l.XAddr(idx), "X")
		inc(idx, l.Dims)
	}
	for k, d := range l.Dims {
		for i := 0; i < d; i++ {
			for r := 0; r < 2; r++ {
				record(l.AAddr(k, i, r), "A"+string(rune('0'+k)))
			}
		}
	}
	for i := 0; i < 4; i++ {
		for r := 0; r < 2; r++ {
			record(l.BAddr(1, i, r), "B")
		}
	}
	if uint64(len(seen)) != l.Words() {
		t.Fatalf("layout covers %d of %d words", len(seen), l.Words())
	}
}

func TestTraceLengths(t *testing.T) {
	dims := []int{3, 4, 2}
	R := 2
	l := NewLayout(dims, R, 0)
	I := 3 * 4 * 2
	// Each iteration emits 1 (X) + N-1 (A) + 2 (B read+write) accesses.
	perIter := 1 + 2 + 2
	want := I * R * perIter

	for name, tr := range map[string][]Access{
		"unblocked": Collect(func(e func(Access)) { Unblocked(l, 0, e) }),
		"blocked":   Collect(func(e func(Access)) { Blocked(l, 0, 2, e) }),
		"random":    Collect(func(e func(Access)) { Random(l, 0, 7, e) }),
	} {
		if len(tr) != want {
			t.Fatalf("%s trace has %d accesses, want %d", name, len(tr), want)
		}
	}
}

// Every ordering must touch the same multiset of addresses (they
// compute the same thing).
func TestOrderingsTouchSameAddresses(t *testing.T) {
	dims := []int{4, 3, 3}
	R := 3
	l := NewLayout(dims, R, 2)
	count := func(tr []Access) map[uint64]int {
		m := make(map[uint64]int)
		for _, a := range tr {
			m[a.Addr]++
		}
		return m
	}
	u := count(Collect(func(e func(Access)) { Unblocked(l, 2, e) }))
	b := count(Collect(func(e func(Access)) { Blocked(l, 2, 2, e) }))
	r := count(Collect(func(e func(Access)) { Random(l, 2, 3, e) }))
	m := count(Collect(func(e func(Access)) { Morton(l, 2, e) }))
	if len(u) != len(b) || len(u) != len(r) || len(u) != len(m) {
		t.Fatalf("distinct address counts differ: %d %d %d %d", len(u), len(b), len(r), len(m))
	}
	for addr, c := range u {
		if b[addr] != c || r[addr] != c || m[addr] != c {
			t.Fatalf("access multiplicity differs at %d: %d %d %d %d", addr, c, b[addr], r[addr], m[addr])
		}
	}
}

func TestMortonVisitsEveryIterationOnce(t *testing.T) {
	// Non-power-of-two extents exercise the out-of-range skip.
	dims := []int{3, 5}
	R := 3
	l := NewLayout(dims, R, 0)
	tr := Collect(func(e func(Access)) { Morton(l, 0, e) })
	perIter := 1 + 1 + 2 // X + one factor + B read/write
	if len(tr) != 3*5*R*perIter {
		t.Fatalf("Morton emitted %d accesses, want %d", len(tr), 3*5*R*perIter)
	}
}

func TestWriteOnlyToOutput(t *testing.T) {
	dims := []int{3, 3}
	l := NewLayout(dims, 2, 0)
	bLo := l.BAddr(0, 0, 0)
	Unblocked(l, 0, func(a Access) {
		if a.Write && a.Addr < bLo {
			t.Fatalf("write to non-output address %d", a.Addr)
		}
	})
}

func TestRandomDeterministic(t *testing.T) {
	dims := []int{3, 3}
	l := NewLayout(dims, 2, 0)
	a := Collect(func(e func(Access)) { Random(l, 0, 5, e) })
	b := Collect(func(e func(Access)) { Random(l, 0, 5, e) })
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same trace")
		}
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLayout([]int{3}, 2, 0) },
		func() { NewLayout([]int{3, 3}, 0, 0) },
		func() { NewLayout([]int{3, 3}, 2, 2) },
		func() { Blocked(NewLayout([]int{3, 3}, 2, 0), 0, 0, func(Access) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
