package ttm

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Chain applies TTMs for every mode except skip (skip = -1 applies
// all). us[k] may be nil when k == skip. The result of a full chain
// with the Tucker factors is the core tensor. Contractions run in the
// cost-greedy order (see ChainOrder); the result is bitwise identical
// for every worker count but differs from ChainScalar's ascending
// order by floating-point rounding only.
func Chain(x *tensor.Dense, us []*tensor.Matrix, skip int) *tensor.Dense {
	return ChainWorkers(x, us, skip, 0)
}

// ChainWorkers is Chain with an explicit worker count (<= 0 selects
// the linalg default).
func ChainWorkers(x *tensor.Dense, us []*tensor.Matrix, skip, workers int) *tensor.Dense {
	checkChain(x, us, skip)
	dims := x.Dims()
	for k := range dims {
		if k != skip {
			dims[k] = us[k].Cols()
		}
	}
	out := tensor.NewDense(dims...)
	ws := GetWorkspace()
	ChainInto(out, x, us, skip, workers, ws)
	PutWorkspace(ws)
	return out
}

// ChainOrder returns the order in which a chain contracts its modes:
// every mode except skip, sorted by ascending Cols/Rows ratio — the
// mode that shrinks the intermediate most is contracted first, which
// greedily minimizes the flops and words of every later step. Ties
// break toward the lower mode index. The order depends on operand
// shapes only, never on values or worker count.
func ChainOrder(us []*tensor.Matrix, skip int) []int {
	return appendChainOrder(make([]int, 0, len(us)), us, skip)
}

// appendChainOrder writes the greedy order into ord's backing array
// (the caller guarantees capacity, keeping the hot path
// allocation-free).
func appendChainOrder(ord []int, us []*tensor.Matrix, skip int) []int {
	ord = ord[:0]
	for k := range us {
		if k != skip {
			ord = append(ord, k) //repro:ignore hotpath-alloc caller grows ord to len(us) up front
		}
	}
	// Insertion sort: stable, allocation-free, and tiny for tensor
	// orders (len <= N).
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && lessRatio(us[ord[j]], us[ord[j-1]]); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	return ord
}

// lessRatio reports Cols(a)/Rows(a) < Cols(b)/Rows(b) by integer
// cross-multiplication, so ordering is exact with no float rounding.
func lessRatio(a, b *tensor.Matrix) bool {
	return a.Cols()*b.Rows() < b.Cols()*a.Rows()
}

// ChainInto applies the chain into out, reusing ws for intermediates
// so steady-state sweeps allocate nothing once ws has grown. out must
// have extent us[k].Cols() on every mode k != skip and x's extent on
// skip, and must not alias x. An empty chain (an order-1 tensor whose
// only mode is skipped) degenerates to a copy.
//
//repro:hotpath
func ChainInto(out, x *tensor.Dense, us []*tensor.Matrix, skip, workers int, ws *Workspace) {
	checkChain(x, us, skip)
	N := x.Order()
	for k := 0; k < N; k++ {
		want := x.Dim(k)
		if k != skip {
			want = us[k].Cols()
		}
		if out.Dim(k) != want {
			panic(fmt.Sprintf("ttm: out extent %d on mode %d, want %d", out.Dim(k), k, want))
		}
	}
	ws.ord = growInts(ws.ord, N)
	steps := appendChainOrder(ws.ord, us, skip)
	if len(steps) == 0 {
		n := copy(out.Data(), x.Data())
		obs.Copy(n)
		return
	}
	sp := obs.Start(obs.PhaseTTMChain)
	ws.dims = growInts(ws.dims, N)
	dims := ws.dims[:N]
	for k := 0; k < N; k++ {
		dims[k] = x.Dim(k)
	}
	if len(steps) > 1 {
		// Grow the ping-pong buffers to the largest intermediate.
		maxInter, size := 0, x.Elems()
		for _, k := range steps[:len(steps)-1] {
			size = size / dims[k] * us[k].Cols()
			if size > maxInter {
				maxInter = size
			}
		}
		ws.a = grow(ws.a, maxInter)
		ws.b = grow(ws.b, maxInter)
	}
	cur := x.Data()
	useA := true
	for i, k := range steps {
		u := us[k]
		L, Rt := 1, 1
		for j := 0; j < k; j++ {
			L *= dims[j]
		}
		for j := k + 1; j < N; j++ {
			Rt *= dims[j]
		}
		I, R := dims[k], u.Cols()
		var dst []float64
		switch {
		case i == len(steps)-1:
			dst = out.Data()
		case useA:
			dst, useA = ws.a[:L*R*Rt], false
		default:
			dst, useA = ws.b[:L*R*Rt], true
		}
		ttmSlices(dst, cur, u, L, I, Rt, workers, false)
		cur = dst
		dims[k] = R
	}
	sp.Stop()
}
