package ttm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/tensor"
)

// ttmSlabName labels per-slab GEMM chunks on flight-recorder worker
// rows, mirroring kernel.FastInto's "slab" spans.
var ttmSlabName = flight.RegisterName("ttm-slab")

// TTM returns Y = X x_mode U^T where U is I_mode x R: the mode's
// extent becomes R. The contraction runs as blocked GEMM over the
// contiguous column-major slabs of the storage order (no unfolding is
// materialized) at the default worker count.
func TTM(x *tensor.Dense, u *tensor.Matrix, mode int) *tensor.Dense {
	return TTMWorkers(x, u, mode, 0)
}

// TTMWorkers is TTM with an explicit worker count (<= 0 selects the
// linalg default). The result is bitwise identical for every worker
// count.
func TTMWorkers(x *tensor.Dense, u *tensor.Matrix, mode, workers int) *tensor.Dense {
	checkTTM(x, u, mode)
	outDims := x.Dims()
	outDims[mode] = u.Cols()
	out := tensor.NewDense(outDims...)
	TTMInto(out, x, u, mode, workers)
	return out
}

// TTMInto computes Y = X x_mode U^T into out, which must have
// u.Cols() extent on mode and x's extents elsewhere, and must not
// alias x. Nothing is allocated: out is written by GEMM directly.
//
//repro:hotpath
func TTMInto(out, x *tensor.Dense, u *tensor.Matrix, mode, workers int) {
	checkTTM(x, u, mode)
	checkInto(out, x, mode, u.Cols())
	L, I, Rt := slabShape(x, mode)
	ttmSlices(out.Data(), x.Data(), u, L, I, Rt, workers, false)
}

// TTMT returns Y = X x_mode U, contracting against U's *columns*
// (u.Cols() must equal the mode extent; the mode's extent becomes
// u.Rows()). This is the transposed-factor variant Tucker
// reconstruction needs — computing it directly avoids materializing
// linalg.Transpose(U) at all.
func TTMT(x *tensor.Dense, u *tensor.Matrix, mode int) *tensor.Dense {
	return TTMTWorkers(x, u, mode, 0)
}

// TTMTWorkers is TTMT with an explicit worker count.
func TTMTWorkers(x *tensor.Dense, u *tensor.Matrix, mode, workers int) *tensor.Dense {
	checkTTMT(x, u, mode)
	outDims := x.Dims()
	outDims[mode] = u.Rows()
	out := tensor.NewDense(outDims...)
	TTMTInto(out, x, u, mode, workers)
	return out
}

// TTMTInto computes Y = X x_mode U into out (extent u.Rows() on mode).
//
//repro:hotpath
func TTMTInto(out, x *tensor.Dense, u *tensor.Matrix, mode, workers int) {
	checkTTMT(x, u, mode)
	checkInto(out, x, mode, u.Rows())
	L, I, Rt := slabShape(x, mode)
	ttmSlices(out.Data(), x.Data(), u, L, I, Rt, workers, true)
}

// checkTTMT validates the transposed-variant operands.
func checkTTMT(x *tensor.Dense, u *tensor.Matrix, mode int) {
	N := x.Order()
	if mode < 0 || mode >= N {
		panic(fmt.Sprintf("ttm: mode %d out of range for order %d", mode, N))
	}
	if u.Cols() != x.Dim(mode) {
		panic(fmt.Sprintf("ttm: U has %d cols, mode %d has extent %d", u.Cols(), mode, x.Dim(mode)))
	}
}

// checkInto validates out's shape for a mode contraction that leaves
// extent r on mode.
func checkInto(out, x *tensor.Dense, mode, r int) {
	N := x.Order()
	if out.Order() != N {
		panic(fmt.Sprintf("ttm: out has order %d, want %d", out.Order(), N))
	}
	for k := 0; k < N; k++ {
		want := x.Dim(k)
		if k == mode {
			want = r
		}
		if out.Dim(k) != want {
			panic(fmt.Sprintf("ttm: out extent %d on mode %d, want %d", out.Dim(k), k, want))
		}
	}
}

// slabShape splits x's column-major storage around mode into an
// L x I x Rt stack: Rt contiguous column-major L x I slabs with I the
// contracted extent.
func slabShape(x *tensor.Dense, mode int) (L, I, Rt int) {
	L, Rt = 1, 1
	for k := 0; k < mode; k++ {
		L *= x.Dim(k)
	}
	for k := mode + 1; k < x.Order(); k++ {
		Rt *= x.Dim(k)
	}
	return L, x.Dim(mode), Rt
}

// ttmSlices runs one mode contraction on raw column-major storage.
// X is an L x I x Rt slab stack; trans=false contracts against U's
// rows (Y = X x_k U^T, mode extent -> u.Cols()), trans=true against
// its columns (Y = X x_k U, mode extent -> u.Rows()). The boundary
// modes are single GEMMs because the unfolding is already contiguous
// there; interior modes fan independent per-slab GEMMs out over
// workers (each slab runs single-threaded into a disjoint out range,
// so results are bitwise worker-count independent).
//
//repro:hotpath
func ttmSlices(out, data []float64, u *tensor.Matrix, L, I, Rt, workers int, trans bool) {
	R := u.Cols()
	if trans {
		R = u.Rows()
	}
	ud := u.Data()
	sp := obs.Start(obs.PhaseTTM)
	switch {
	case Rt == 1:
		// Y (L x R) = X (L x I) * op(U): the mode is the trailing
		// (slowest) index, so the L x I view is the whole storage.
		if trans {
			linalg.GemmNT(out, data, ud, L, I, R, workers)
		} else {
			linalg.GemmNN(out, data, ud, L, I, R, workers)
		}
	case L == 1:
		// Y (R x Rt) = op(U) * X (I x Rt): the mode is the leading
		// (fastest) index, so the I x Rt view is the whole storage.
		if trans {
			linalg.GemmNN(out, ud, data, R, I, Rt, workers)
		} else {
			linalg.GemmTN(out, ud, data, I, R, Rt, workers)
		}
	default:
		ttmSlabs(out, data, ud, L, I, Rt, R, workers, trans)
	}
	sp.Stop()
}

// ttmChunks fixes the slab-queue granularity so the work split (and
// the flight-trace shape) is worker-count independent, mirroring
// kernel's interiorChunks.
const ttmChunks = 16

// ttmSlabs computes the interior-mode case: for each of the Rt slabs,
// Y_t (L x R) = X_t (L x I) * op(U).
//
//repro:hotpath
func ttmSlabs(out, data, ud []float64, L, I, Rt, R, workers int, trans bool) {
	workers = linalg.ResolveWorkers(workers)
	nchunk := ttmChunks
	if nchunk > Rt {
		nchunk = Rt
	}
	if workers > nchunk {
		workers = nchunk
	}
	if workers <= 1 {
		for t := 0; t < Rt; t++ {
			slabGemm(out, data, ud, L, I, R, t, trans)
		}
		return
	}
	ttmSlabsParallel(out, data, ud, L, I, Rt, R, nchunk, workers, trans)
}

// slabGemm runs the single-threaded GEMM of slab t.
//
//repro:hotpath
func slabGemm(out, data, ud []float64, L, I, R, t int, trans bool) {
	x := data[t*L*I : (t+1)*L*I]
	y := out[t*L*R : (t+1)*L*R]
	if trans {
		linalg.GemmNT(y, x, ud, L, I, R, 1)
	} else {
		linalg.GemmNN(y, x, ud, L, I, R, 1)
	}
}

// ttmSlabsParallel drains a fixed queue of slab chunks with `workers`
// goroutines. Chunk boundaries depend only on (Rt, nchunk), and every
// slab's GEMM writes a disjoint out range single-threaded, so any
// assignment of chunks to workers produces bitwise identical output.
//
//repro:ignore hotpath-alloc goroutine fan-out: the parallel path allocates bookkeeping only
func ttmSlabsParallel(out, data, ud []float64, L, I, Rt, R, nchunk, workers int, trans bool) {
	var next atomic.Int64
	var wg sync.WaitGroup
	fr := flight.Rec()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				c := int(next.Add(1) - 1)
				if c >= nchunk {
					return
				}
				if fr.Enabled() {
					fr.Begin(flight.AnonPid, tid, ttmSlabName)
				}
				t0, t1 := c*Rt/nchunk, (c+1)*Rt/nchunk
				for t := t0; t < t1; t++ {
					slabGemm(out, data, ud, L, I, R, t, trans)
				}
				if fr.Enabled() {
					fr.End(flight.AnonPid, tid, ttmSlabName)
				}
			}
		}(w)
	}
	wg.Wait()
}
