package ttm

import (
	"fmt"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// engineShapes enumerates the property-test shapes: orders 2-5, plus
// degenerate extents (unit modes) the slab decomposition must survive.
var engineShapes = [][]int{
	{4, 5},
	{3, 4, 5},
	{5, 4, 3, 2},
	{3, 2, 4, 2, 3},
	{1, 5, 4},
	{5, 1, 4},
	{5, 4, 1},
	{1, 1, 3},
	{2, 1, 3, 1},
}

// TestEngineMatchesScalarEveryMode: the blocked engine must agree with
// the per-element scalar reference for every order, mode, and target
// rank — including rank 1.
func TestEngineMatchesScalarEveryMode(t *testing.T) {
	for si, dims := range engineShapes {
		x := tensor.RandomDense(int64(100+si), dims...)
		for mode := range dims {
			for _, R := range []int{1, 3} {
				u := tensor.RandomMatrix(int64(200+10*si+mode), dims[mode], R)
				got := TTMWorkers(x, u, mode, 1)
				want := TTMScalar(x, u, mode)
				if !got.EqualApprox(want, 1e-10) {
					t.Fatalf("dims %v mode %d R %d: engine vs scalar diff %v",
						dims, mode, R, got.MaxAbsDiff(want))
				}
			}
		}
	}
}

// TestChainMatchesScalarEverySkip: the greedy-ordered engine chain
// must match the ascending-order scalar chain (same mathematics,
// different association) for every skip, including the full chain.
func TestChainMatchesScalarEverySkip(t *testing.T) {
	for si, dims := range engineShapes {
		x := tensor.RandomDense(int64(300+si), dims...)
		us := make([]*tensor.Matrix, len(dims))
		for k := range dims {
			us[k] = tensor.RandomMatrix(int64(400+10*si+k), dims[k], 1+k%3)
		}
		for skip := -1; skip < len(dims); skip++ {
			got := ChainWorkers(x, us, skip, 1)
			want := ChainScalar(x, us, skip)
			if !got.EqualApprox(want, 1e-10) {
				t.Fatalf("dims %v skip %d: chain vs scalar diff %v",
					dims, skip, got.MaxAbsDiff(want))
			}
		}
	}
}

// TestEmptyChainIsCopy: an order-1 tensor whose only mode is skipped
// degenerates to a copy, through both the allocating and the in-place
// entry points.
func TestEmptyChainIsCopy(t *testing.T) {
	x := tensor.RandomDense(11, 7)
	got := Chain(x, []*tensor.Matrix{nil}, 0)
	for i, v := range got.Data() {
		if v != x.Data()[i] { //repro:bitwise a copy must be exact
			t.Fatalf("element %d: %g != %g", i, v, x.Data()[i])
		}
	}
	out := tensor.NewDense(7)
	ws := NewWorkspace()
	ChainInto(out, x, []*tensor.Matrix{nil}, 0, 1, ws)
	for i, v := range out.Data() {
		if v != x.Data()[i] { //repro:bitwise a copy must be exact
			t.Fatalf("ChainInto element %d: %g != %g", i, v, x.Data()[i])
		}
	}
}

// TestEngineWorkerBitwise: chains, single TTMs, and Grams must be
// bitwise identical across worker counts 1-8 — the repository's
// determinism contract. The order-4 shape keeps interior modes (both
// L > 1 and Rt > 1) in play, where the parallel slab/bucket paths run.
func TestEngineWorkerBitwise(t *testing.T) {
	dims := []int{6, 7, 8, 9}
	x := tensor.RandomDense(17, dims...)
	us := make([]*tensor.Matrix, len(dims))
	for k := range dims {
		us[k] = tensor.RandomMatrix(int64(500+k), dims[k], 2+k%2)
	}
	for skip := -1; skip < len(dims); skip++ {
		ref := ChainWorkers(x, us, skip, 1)
		for w := 2; w <= 8; w++ {
			got := ChainWorkers(x, us, skip, w)
			for i, v := range got.Data() {
				if v != ref.Data()[i] { //repro:bitwise worker-count independence
					t.Fatalf("skip %d workers %d: element %d differs", skip, w, i)
				}
			}
		}
	}
	ws := NewWorkspace()
	for mode := range dims {
		ref := tensor.NewMatrix(dims[mode], dims[mode])
		GramInto(ref, x, mode, 1, ws)
		for w := 2; w <= 8; w++ {
			got := tensor.NewMatrix(dims[mode], dims[mode])
			GramInto(got, x, mode, w, ws)
			for i, v := range got.Data() {
				if v != ref.Data()[i] { //repro:bitwise worker-count independence
					t.Fatalf("gram mode %d workers %d: element %d differs", mode, w, i)
				}
			}
		}
	}
}

// TestTTMTMatchesTransposedOracle: the transposed variant must equal a
// plain TTM against the materialized transpose.
func TestTTMTMatchesTransposedOracle(t *testing.T) {
	dims := []int{4, 5, 6}
	x := tensor.RandomDense(23, dims...)
	for mode := range dims {
		u := tensor.RandomMatrix(int64(600+mode), 3, dims[mode]) // 3 x I_mode
		got := TTMT(x, u, mode)
		want := TTM(x, linalg.Transpose(u), mode)
		if !got.EqualApprox(want, 1e-10) {
			t.Fatalf("mode %d: TTMT vs transposed TTM diff %v", mode, got.MaxAbsDiff(want))
		}
	}
}

// TestGramMatchesUnfoldOracle: GramInto must reproduce the explicit
// unfolding product Y_(k) Y_(k)^T on every mode (leading, interior,
// trailing — all three slab cases).
func TestGramMatchesUnfoldOracle(t *testing.T) {
	dims := []int{4, 3, 5, 2}
	y := tensor.RandomDense(29, dims...)
	ws := NewWorkspace()
	for mode := range dims {
		g := tensor.NewMatrix(dims[mode], dims[mode])
		GramInto(g, y, mode, 0, ws)
		yk := tensor.Unfold(y, mode)
		want := linalg.MatMulTransB(yk, yk)
		for i, v := range g.Data() {
			if d := v - want.Data()[i]; d > 1e-10 || d < -1e-10 {
				t.Fatalf("mode %d: gram element %d differs by %g", mode, i, d)
			}
		}
	}
}

// TestChainCostMatchesMeasuredWords: costmodel.TTMChainCost promises to
// reproduce obs.Gemm's operand accounting exactly — the planner's
// prediction for a chain equals the measured streaming totals to the
// word and the flop.
func TestChainCostMatchesMeasuredWords(t *testing.T) {
	cases := []struct {
		dims, ranks []int
		skip        int
	}{
		{[]int{12, 10, 8}, []int{5, 4, 3}, -1},
		{[]int{12, 10, 8}, []int{5, 4, 3}, 0},
		{[]int{12, 10, 8}, []int{5, 4, 3}, 1},
		{[]int{12, 10, 8}, []int{5, 4, 3}, 2},
		{[]int{6, 5, 4, 3}, []int{3, 2, 2, 2}, -1},
		{[]int{9, 7}, []int{4, 3}, -1},
		{[]int{9, 7}, []int{4, 3}, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v-skip%d", tc.dims, tc.skip), func(t *testing.T) {
			x := tensor.RandomDense(31, tc.dims...)
			us := make([]*tensor.Matrix, len(tc.dims))
			fdims := make([]float64, len(tc.dims))
			franks := make([]float64, len(tc.dims))
			for k := range tc.dims {
				us[k] = tensor.RandomMatrix(int64(700+k), tc.dims[k], tc.ranks[k])
				fdims[k] = float64(tc.dims[k])
				franks[k] = float64(tc.ranks[k])
			}
			col := obs.New(0)
			obs.Enable(col)
			ChainWorkers(x, us, tc.skip, 1)
			obs.Disable()
			tot := col.Totals()
			ec := costmodel.Model{Dims: fdims}.TTMChainCost(franks, tc.skip)
			if got := float64(tot.WordsRead + tot.WordsWritten); got != ec.Words { //repro:bitwise the model mirrors obs.Gemm exactly
				t.Errorf("words: measured %v, model %v", got, ec.Words)
			}
			if got := float64(tot.Flops); got != ec.Flops { //repro:bitwise the model mirrors obs.Gemm exactly
				t.Errorf("flops: measured %v, model %v", got, ec.Flops)
			}
		})
	}
}

// TestSteadyStateZeroAlloc: a warmed chain + gram pipeline — the HOOI
// sweep body — must allocate nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	dims := []int{16, 12, 10}
	ranks := []int{6, 5, 4}
	x := tensor.RandomDense(37, dims...)
	us := make([]*tensor.Matrix, len(dims))
	for k := range dims {
		us[k] = tensor.RandomMatrix(int64(800+k), dims[k], ranks[k])
	}
	ws := NewWorkspace()
	outs := make([]*tensor.Dense, len(dims))
	grams := make([]*tensor.Matrix, len(dims))
	for k := range dims {
		ydims := append([]int(nil), ranks...)
		ydims[k] = dims[k]
		outs[k] = tensor.NewDense(ydims...)
		grams[k] = tensor.NewMatrix(dims[k], dims[k])
		ChainInto(outs[k], x, us, k, 1, ws) // warm the ping-pong buffers
		GramInto(grams[k], outs[k], k, 1, ws)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for k := range dims {
			ChainInto(outs[k], x, us, k, 1, ws)
			GramInto(grams[k], outs[k], k, 1, ws)
		}
	})
	if allocs != 0 { //repro:bitwise exact allocation count
		t.Errorf("steady-state sweep body: %v allocs/op, want 0", allocs)
	}
}
