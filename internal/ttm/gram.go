package ttm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/simd"
	"repro/internal/tensor"
)

// gramSlabName labels per-chunk gram accumulation on flight-recorder
// worker rows.
var gramSlabName = flight.RegisterName("gram-slab")

// gramChunks fixes the interior-mode bucket count: slabs are assigned
// to chunks by index and each chunk accumulates into its own bucket,
// merged by kernel.ReduceTree in an order that depends only on the
// bucket count — so the gram is bitwise identical for every worker
// count.
const gramChunks = 16

// GramInto computes G = Y_(k) Y_(k)^T (I_k x I_k) — the Gram matrix
// of the mode-k unfolding — without materializing the unfolding. The
// boundary modes are single GEMMs on the storage itself; interior
// modes accumulate per-slab GEMMs G += X_t^T X_t over the Rt slabs.
// ws supplies the slab scratch and buckets (steady-state calls
// allocate nothing).
//
//repro:hotpath
func GramInto(g *tensor.Matrix, y *tensor.Dense, mode, workers int, ws *Workspace) {
	N := y.Order()
	if mode < 0 || mode >= N {
		panic(fmt.Sprintf("ttm: mode %d out of range for order %d", mode, N))
	}
	L, I, Rt := slabShape(y, mode)
	if g.Rows() != I || g.Cols() != I {
		panic(fmt.Sprintf("ttm: gram is %dx%d, mode %d needs %dx%d", g.Rows(), g.Cols(), mode, I, I))
	}
	data := y.Data()
	sp := obs.Start(obs.PhaseGram)
	switch {
	case Rt == 1:
		// Y_(k) is the transpose of the whole L x I storage:
		// G = X^T X.
		linalg.GemmTN(g.Data(), data, data, L, I, I, workers)
	case L == 1:
		// Y_(k) is the whole I x Rt storage: G = Y Y^T.
		linalg.GemmNT(g.Data(), data, data, I, Rt, I, workers)
	default:
		gramSlabs(g.Data(), data, L, I, Rt, workers, ws)
	}
	sp.Stop()
}

// gramSlabs accumulates G = sum_t X_t^T X_t over the Rt interior
// slabs into fixed buckets merged by kernel.ReduceTree (mirroring
// kernel.FastInto's interior-mode strategy).
//
//repro:hotpath
func gramSlabs(g, data []float64, L, I, Rt, workers int, ws *Workspace) {
	n := I * I
	workers = linalg.ResolveWorkers(workers)
	nbuf := gramChunks
	if nbuf > Rt {
		nbuf = Rt
	}
	if workers > nbuf {
		workers = nbuf
	}
	ws.ensureGram(n, nbuf, workers)
	bufs := append(ws.bufs, g[:n]) //repro:ignore hotpath-alloc ensureGram reserves nbuf slots
	for b := 1; b < nbuf; b++ {
		bufs = append(bufs, ws.priv[(b-1)*n:b*n]) //repro:ignore hotpath-alloc ensureGram reserves nbuf slots
	}
	for _, b := range bufs {
		clearSlice(b)
	}
	if workers <= 1 {
		wbuf := ws.scratch[:n]
		for c := 0; c < nbuf; c++ {
			gramChunk(bufs[c], wbuf, data, L, I, Rt, c, nbuf)
		}
	} else {
		gramSlabsParallel(bufs, data, L, I, Rt, nbuf, workers, ws)
	}
	kernel.ReduceTree(bufs, workers)
	ws.bufs = bufs[:0]
}

// gramChunk folds chunk c's slab range into one bucket through the
// worker-private wbuf.
//
//repro:hotpath
func gramChunk(bucket, wbuf, data []float64, L, I, Rt, c, nbuf int) {
	t0, t1 := c*Rt/nbuf, (c+1)*Rt/nbuf
	for t := t0; t < t1; t++ {
		xt := data[t*L*I : (t+1)*L*I]
		linalg.GemmTN(wbuf, xt, xt, L, I, I, 1)
		simd.Add(bucket, wbuf)
	}
	obs.Axpy(t1-t0, len(bucket))
}

// gramSlabsParallel drains the fixed chunk queue with `workers`
// goroutines; chunk c's bucket is touched only by the worker that
// claimed c, so buckets need no locking and the ReduceTree merge is
// the only cross-worker combine.
//
//repro:ignore hotpath-alloc goroutine fan-out: the parallel path allocates bookkeeping only
func gramSlabsParallel(bufs [][]float64, data []float64, L, I, Rt, nbuf, workers int, ws *Workspace) {
	n := I * I
	var next atomic.Int64
	var wg sync.WaitGroup
	fr := flight.Rec()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			wbuf := ws.scratch[tid*n : (tid+1)*n]
			for {
				c := int(next.Add(1) - 1)
				if c >= nbuf {
					return
				}
				if fr.Enabled() {
					fr.Begin(flight.AnonPid, tid, gramSlabName)
				}
				gramChunk(bufs[c], wbuf, data, L, I, Rt, c, nbuf)
				if fr.Enabled() {
					fr.End(flight.AnonPid, tid, gramSlabName)
				}
			}
		}(w)
	}
	wg.Wait()
}

func clearSlice(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
