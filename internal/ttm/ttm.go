// Package ttm implements the tensor-times-matrix product, the kernel
// of Tucker-decomposition algorithms — the "related computational
// kernels" to which the paper's conclusion says its lower-bound
// approach extends. The mode-k TTM
//
//	Y = X x_k U^T,   Y(i_1,..,r,..,i_N) = sum_{i_k} X(i) U(i_k, r)
//
// replaces dimension I_k by U's column count. Chains of TTMs (one per
// mode) produce the Tucker core; like MTTKRP, their data movement is
// governed by how operands are blocked and ordered, and the Multi-TTM
// follow-up paper (arXiv:2207.10437) gives the matching communication
// lower bounds (internal/bounds MultiTTM).
//
// The package has two implementations:
//
//   - The engine (TTM/TTMInto, Chain/ChainInto, GramInto) computes every
//     mode as blocked GEMM over the contiguous column-major slabs of the
//     storage order — no explicit unfolding is ever materialized — with
//     a pooled grow-only Workspace so steady-state chains allocate
//     nothing, and a shape-derived greedy chain order. Results are
//     bitwise independent of the worker count: parallelism moves whole
//     single-threaded slab GEMMs between workers and merges fixed
//     buckets with kernel.ReduceTree.
//   - TTMScalar/ChainScalar below are the retained reference
//     implementation: a per-element scatter walk with no blocking, kept
//     readable rather than fast. The engine is property-tested against
//     it over orders 2-5, every mode, and degenerate extents.
package ttm

import (
	"fmt"

	"repro/internal/tensor"
)

// TTMScalar returns Y = X x_mode U^T where U is I_mode x R: the
// mode's extent becomes R. This is the scalar reference path; use TTM
// for the blocked engine.
func TTMScalar(x *tensor.Dense, u *tensor.Matrix, mode int) *tensor.Dense {
	checkTTM(x, u, mode)
	N := x.Order()
	R := u.Cols()
	dims := x.Dims()
	outDims := append([]int(nil), dims...)
	outDims[mode] = R
	out := tensor.NewDense(outDims...)

	// Column-major walk of X; each element scatters into R output
	// positions along the contracted mode.
	outStride := strideOf(outDims, mode)
	idx := make([]int, N)
	data := x.Data()
	outData := out.Data()
	for off := 0; off < len(data); off++ {
		v := data[off]
		ik := idx[mode]
		// Output offset with i_mode = 0.
		base := 0
		mult := 1
		for k, d := range outDims {
			if k == mode {
				mult *= d
				continue
			}
			base += idx[k] * mult
			mult *= d
		}
		for r := 0; r < R; r++ {
			outData[base+r*outStride] += v * u.At(ik, r)
		}
		incIndex(idx, dims)
	}
	return out
}

// ChainScalar applies scalar TTMs for every mode except skip (skip =
// -1 applies all), contracting in ascending mode order. us[k] may be
// nil when k == skip. This is the reference path; use Chain for the
// blocked engine with its greedy contraction order.
func ChainScalar(x *tensor.Dense, us []*tensor.Matrix, skip int) *tensor.Dense {
	checkChain(x, us, skip)
	out := x
	for k := 0; k < x.Order(); k++ {
		if k == skip {
			continue
		}
		out = TTMScalar(out, us[k], k)
	}
	return out
}

// Flops returns the multiply-add count of one mode-k TTM: 2*I*R.
func Flops(x *tensor.Dense, R int) int64 {
	return 2 * int64(x.Elems()) * int64(R)
}

// checkTTM validates one mode-k TTM's operands (shared by the scalar
// and engine paths, so both panic identically).
func checkTTM(x *tensor.Dense, u *tensor.Matrix, mode int) {
	N := x.Order()
	if mode < 0 || mode >= N {
		panic(fmt.Sprintf("ttm: mode %d out of range for order %d", mode, N))
	}
	if u.Rows() != x.Dim(mode) {
		panic(fmt.Sprintf("ttm: U has %d rows, mode %d has extent %d", u.Rows(), mode, x.Dim(mode)))
	}
}

// checkChain validates a chain's matrices against x.
func checkChain(x *tensor.Dense, us []*tensor.Matrix, skip int) {
	if len(us) != x.Order() {
		panic(fmt.Sprintf("ttm: %d matrices for order-%d tensor", len(us), x.Order()))
	}
	for k, u := range us {
		if k == skip {
			continue
		}
		if u == nil {
			panic(fmt.Sprintf("ttm: matrix %d is nil", k))
		}
		if u.Rows() != x.Dim(k) {
			panic(fmt.Sprintf("ttm: matrix %d has %d rows, mode extent is %d", k, u.Rows(), x.Dim(k)))
		}
	}
}

func strideOf(dims []int, mode int) int {
	s := 1
	for k := 0; k < mode; k++ {
		s *= dims[k]
	}
	return s
}

func incIndex(idx, dims []int) {
	for k := range idx {
		idx[k]++
		if idx[k] < dims[k] {
			return
		}
		idx[k] = 0
	}
}
