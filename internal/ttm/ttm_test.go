package ttm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/tensor"
)

// Oracle: mode-k TTM via unfolding: Y_(k) = U^T X_(k).
func viaUnfold(x *tensor.Dense, u *tensor.Matrix, mode int) *tensor.Dense {
	yk := linalg.MatMulTransA(u, tensor.Unfold(x, mode))
	outDims := x.Dims()
	outDims[mode] = u.Cols()
	return tensor.Fold(yk, mode, outDims)
}

func TestTTMMatchesUnfoldOracle(t *testing.T) {
	dims := []int{4, 3, 5}
	x := tensor.RandomDense(1, dims...)
	for mode := 0; mode < 3; mode++ {
		u := tensor.RandomMatrix(int64(mode+2), dims[mode], 2)
		got := TTM(x, u, mode)
		want := viaUnfold(x, u, mode)
		if !got.EqualApprox(want, 1e-10) {
			t.Fatalf("mode %d: TTM mismatch %v", mode, got.MaxAbsDiff(want))
		}
	}
}

func TestTTMShape(t *testing.T) {
	x := tensor.RandomDense(3, 4, 5, 6)
	u := tensor.RandomMatrix(4, 5, 2)
	y := TTM(x, u, 1)
	d := y.Dims()
	if d[0] != 4 || d[1] != 2 || d[2] != 6 {
		t.Fatalf("shape %v", d)
	}
}

func TestTTMIdentityIsNoop(t *testing.T) {
	x := tensor.RandomDense(5, 3, 4)
	id := linalg.Identity(3)
	if !TTM(x, id, 0).EqualApprox(x, 1e-12) {
		t.Fatal("TTM with identity changed the tensor")
	}
}

// TTMs in different modes commute.
func TestTTMCommutesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 2 + rng.Intn(2)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 2 + rng.Intn(3)
		}
		x := tensor.RandomDense(seed, dims...)
		k1 := rng.Intn(nd)
		k2 := (k1 + 1) % nd
		u1 := tensor.RandomMatrix(seed+1, dims[k1], 1+rng.Intn(3))
		u2 := tensor.RandomMatrix(seed+2, dims[k2], 1+rng.Intn(3))
		a := TTM(TTM(x, u1, k1), u2, k2)
		b := TTM(TTM(x, u2, k2), u1, k1)
		return a.EqualApprox(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChain(t *testing.T) {
	dims := []int{3, 4, 5}
	x := tensor.RandomDense(7, dims...)
	us := []*tensor.Matrix{
		tensor.RandomMatrix(8, 3, 2),
		tensor.RandomMatrix(9, 4, 2),
		tensor.RandomMatrix(10, 5, 3),
	}
	full := Chain(x, us, -1)
	d := full.Dims()
	if d[0] != 2 || d[1] != 2 || d[2] != 3 {
		t.Fatalf("chain dims %v", d)
	}
	// Equivalent to sequential TTMs.
	want := TTM(TTM(TTM(x, us[0], 0), us[1], 1), us[2], 2)
	if !full.EqualApprox(want, 1e-10) {
		t.Fatal("Chain != sequential TTMs")
	}
	// Skip mode 1: dimension 1 untouched.
	part := Chain(x, []*tensor.Matrix{us[0], nil, us[2]}, 1)
	if part.Dim(1) != 4 {
		t.Fatal("skip mode was contracted")
	}
}

func TestFlops(t *testing.T) {
	x := tensor.NewDense(3, 4)
	if got := Flops(x, 5); got != 2*12*5 {
		t.Fatalf("Flops = %d", got)
	}
}

func TestPanics(t *testing.T) {
	x := tensor.RandomDense(1, 3, 4)
	for _, f := range []func(){
		func() { TTM(x, tensor.NewMatrix(3, 2), 2) },
		func() { TTM(x, tensor.NewMatrix(5, 2), 0) },
		func() { Chain(x, []*tensor.Matrix{nil}, -1) },
		func() { Chain(x, []*tensor.Matrix{nil, nil}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
