package ttm

import "sync"

// Workspace holds every grow-only buffer the TTM engine needs: the
// chain's ping-pong intermediates, per-worker gram slab products, and
// the gram accumulation buckets. Buffers grow monotonically and are
// reused across calls, so a HOOI sweep that cycles through modes of
// one tensor reaches a steady state with zero allocations.
//
// A Workspace is not safe for concurrent use by multiple chain or
// gram calls; use one per goroutine (or the pool helpers below).
type Workspace struct {
	a, b    []float64 // chain ping-pong intermediates
	scratch []float64 // workers * I*I per-worker gram slab products
	priv    []float64 // (chunks-1) * I*I gram accumulation buckets
	bufs    [][]float64
	dims    []int // mutable extent vector during a chain
	ord     []int // greedy contraction order
}

// NewWorkspace returns an empty workspace; buffers are grown on first
// use. Prefer GetWorkspace/PutWorkspace for pooled reuse.
func NewWorkspace() *Workspace { return new(Workspace) }

// ensureGram grows the slab-pass buffers for an I*I = n gram over
// nbuf buckets at the given worker count.
func (ws *Workspace) ensureGram(n, nbuf, workers int) {
	if workers < 1 {
		workers = 1
	}
	ws.scratch = grow(ws.scratch, workers*n)
	if nbuf > 1 {
		ws.priv = grow(ws.priv, (nbuf-1)*n)
	}
	if cap(ws.bufs) < nbuf {
		ws.bufs = make([][]float64, 0, nbuf) //repro:ignore hotpath-alloc grow-only bucket headers; settles after the first call
	}
	ws.bufs = ws.bufs[:0]
}

//repro:ignore hotpath-alloc grow-only workspace primitive; allocates only while capacity still grows
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

//repro:ignore hotpath-alloc grow-only workspace primitive; allocates only while capacity still grows
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace fetches a workspace from the shared pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool for reuse.
func PutWorkspace(ws *Workspace) { wsPool.Put(ws) }
