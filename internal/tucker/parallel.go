package tucker

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/simnet"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// ParallelResult is a distributed HOOI run with its communication
// accounting.
type ParallelResult struct {
	Model *Model
	Trace []TraceEntry

	// GatherWords counts factor block-row All-Gathers; ReduceWords
	// counts the All-Reduces of the projected tensors Y (the multi-TTM
	// results) — both per rank, sends+receives.
	GatherWords []int64
	ReduceWords []int64
}

// MaxGatherWords returns the per-rank maximum of gather words.
func (r *ParallelResult) MaxGatherWords() int64 { return maxOf(r.GatherWords) }

// MaxReduceWords returns the per-rank maximum of Y-reduce words.
func (r *ParallelResult) MaxReduceWords() int64 { return maxOf(r.ReduceWords) }

// MaxCommWords returns the maximum over ranks of total collective
// words (gathers plus reduces) — the per-processor figure the
// Multi-TTM parallel lower bounds apply to.
func (r *ParallelResult) MaxCommWords() int64 {
	var m int64
	for i := range r.GatherWords {
		if t := r.GatherWords[i] + r.ReduceWords[i]; t > m {
			m = t
		}
	}
	return m
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// DecomposeParallel runs HOOI on the simulated distributed machine
// with the stationary-tensor distribution of the MTTKRP algorithms
// (the layout of the paper's reference [22], parallel Tucker
// compression): the tensor stays put in blocks on an N-way grid,
// factor block rows are All-Gathered within hyperslices, local TTM
// chains produce partial projections, and the small projected tensors
// are summed with an All-Reduce. The eigensolves are replicated (their
// operands are tiny).
//
// Factors are initialized to QR-orthonormalized seeded random matrices
// (replicated deterministically), so a sequential run with the same
// Init reproduces the fit trace exactly. Every tensor dimension must
// be at least prod(shape).
func DecomposeParallel(x *tensor.Dense, shape []int, opts Options, seed int64) (*ParallelResult, error) {
	N := x.Order()
	if len(opts.Ranks) != N {
		return nil, fmt.Errorf("tucker: %d ranks for order-%d tensor", len(opts.Ranks), N)
	}
	for k, r := range opts.Ranks {
		if r < 1 || r > x.Dim(k) {
			return nil, fmt.Errorf("tucker: rank %d invalid for mode %d", r, k)
		}
	}
	if len(shape) != N {
		return nil, fmt.Errorf("tucker: grid shape %v for order-%d tensor", shape, N)
	}
	if opts.MaxIters < 0 {
		return nil, fmt.Errorf("tucker: MaxIters %d", opts.MaxIters)
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 25
	}
	if opts.Tol == 0 { //repro:bitwise unset-option sentinel, exact
		opts.Tol = 1e-8
	}
	g := grid.New(shape...)
	P := g.P()
	for k, d := range x.Dims() {
		if d < P {
			return nil, fmt.Errorf("tucker: dimension %d (mode %d) smaller than P = %d", d, k, P)
		}
	}
	// R is only used for the dist layout's factor sharding; Tucker
	// ranks vary per mode, so shard each factor by rows directly.
	lay := dist.NewStationary(x.Dims(), 1, g)
	net := simnet.New(P)

	// Deterministic orthonormal initial factors (replicated; sharded
	// by owned rows below).
	initFull, err := InitFactors(x.Dims(), opts.Ranks, seed)
	if err != nil {
		return nil, err
	}

	localX := make([]*tensor.Dense, P)
	ownRows := make([][][2]int, P)
	ownFact := make([][]*tensor.Matrix, P)
	for r := 0; r < P; r++ {
		coords := g.Coords(r)
		localX[r] = lay.LocalTensor(coords, x)
		ownRows[r] = make([][2]int, N)
		ownFact[r] = make([]*tensor.Matrix, N)
		for k := 0; k < N; k++ {
			lo, hi := ownRowRangePar(lay, g, k, coords, r)
			ownRows[r][k] = [2]int{lo, hi}
			ownFact[r][k] = initFull[k].RowBlock(lo, hi)
		}
	}

	gatherWords := make([]int64, P)
	reduceWords := make([]int64, P)
	fits := make([][]float64, P)
	finalFact := make([][]*tensor.Matrix, P)
	err = net.Run(func(rank int) error {
		coords := g.Coords(rank)
		world := comm.New(net, worldRanks(P), rank)
		factors := ownFact[rank]
		// Per-rank engine workspace; local chains and Grams run
		// single-worker (the ranks already are the parallelism).
		ws := ttm.GetWorkspace()
		defer ttm.PutWorkspace(ws)

		localSq := 0.0
		for _, v := range localX[rank].Data() {
			localSq += v * v
		}
		normX := math.Sqrt(world.AllReduce([]float64{localSq})[0])

		prevFit := math.Inf(-1)
		var replicated []*tensor.Matrix // full factors after each sweep
		for it := 0; it < opts.MaxIters; it++ {
			for k := 0; k < N; k++ {
				before := net.RankStats(rank).Words()
				// Gather the block rows of every factor except mode
				// k's (exactly the Algorithm 3 gather pattern).
				gathered := make([]*tensor.Matrix, N)
				for j := 0; j < N; j++ {
					if j == k {
						continue
					}
					cj := comm.New(net, lay.HyperSlice(j, coords), rank)
					blocks := cj.AllGatherV(factors[j].Data())
					rlo, rhi := lay.FactorRowRange(j, coords[j])
					gathered[j] = stackRows(blocks, rhi-rlo, factors[j].Cols())
				}
				gatherWords[rank] += net.RankStats(rank).Words() - before

				// Local multi-TTM over all modes but k: partial
				// projection of the local block, via the engine's
				// greedy-ordered chain (identical to the sequential
				// solver's, so a P = 1 run reproduces it bitwise).
				before = net.RankStats(rank).Words()
				z := ttm.ChainWorkers(localX[rank], gathered, k, 1)
				// Embed into the full Y (I_k x prod R_j) and All-Reduce.
				y := embedPartial(z, k, x.Dim(k), lay, coords)
				full := world.AllReduce(y.Data())
				reduceWords[rank] += net.RankStats(rank).Words() - before
				yFull := tensor.NewDenseFromData(full, y.Dims()...)

				// Replicated small eigenproblem; keep only owned rows.
				gram := tensor.NewMatrix(x.Dim(k), x.Dim(k))
				ttm.GramInto(gram, yFull, k, 1, ws)
				u, err := linalg.LeadingEigvecs(gram, opts.Ranks[k])
				if err != nil {
					return fmt.Errorf("tucker: rank %d mode %d: %w", rank, k, err)
				}
				lo, hi := ownRows[rank][k][0], ownRows[rank][k][1]
				factors[k] = u.RowBlock(lo, hi)
				if replicated == nil {
					replicated = make([]*tensor.Matrix, N)
				}
				replicated[k] = u
			}
			// Fit from the replicated factors (all N are replicated
			// once the first sweep completes); the local core partial
			// contracts each mode's *local* factor rows with one
			// engine chain.
			localFacts := make([]*tensor.Matrix, N)
			for j := 0; j < N; j++ {
				rlo, rhi := lay.FactorRowRange(j, coords[j])
				localFacts[j] = mustReplicated(replicated, j).RowBlock(rlo, rhi)
			}
			core := ttm.ChainWorkers(localX[rank], localFacts, -1, 1)
			// Core partials sum across all processors.
			coreFull := world.AllReduce(core.Data())
			var coreNorm2 float64
			for _, v := range coreFull {
				coreNorm2 += v * v
			}
			resid2 := normX*normX - coreNorm2
			if resid2 < 0 {
				resid2 = 0
			}
			fit := 1 - math.Sqrt(resid2)/normX
			fits[rank] = append(fits[rank], fit)
			if fit-prevFit < opts.Tol && it > 0 {
				break
			}
			prevFit = fit
		}
		finalFact[rank] = replicated
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble: replicated factors are identical on every rank.
	factors := finalFact[0]
	core := ttm.Chain(x, factors, -1)
	trace := make([]TraceEntry, len(fits[0]))
	for i, f := range fits[0] {
		trace[i] = TraceEntry{Iter: i, Fit: f}
	}
	normX := x.Norm()
	return &ParallelResult{
		Model:       &Model{Core: core, Factors: factors, Fit: fitFromCore(normX, core)},
		Trace:       trace,
		GatherWords: gatherWords,
		ReduceWords: reduceWords,
	}, nil
}

// InitFactors returns deterministic QR-orthonormalized random factors
// for the given dims and ranks (the shared initialization of the
// sequential/parallel parity tests).
func InitFactors(dims, ranks []int, seed int64) ([]*tensor.Matrix, error) {
	out := make([]*tensor.Matrix, len(dims))
	for k := range dims {
		raw := tensor.RandomMatrix(seed+int64(k)*131, dims[k], ranks[k])
		q, _, err := linalg.QR(raw)
		if err != nil {
			return nil, fmt.Errorf("tucker: init factor %d: %w", k, err)
		}
		out[k] = q
	}
	return out, nil
}

func worldRanks(P int) []int {
	out := make([]int, P)
	for i := range out {
		out[i] = i
	}
	return out
}

func ownRowRangePar(lay dist.Stationary, g *grid.Grid, k int, coords []int, rank int) (int, int) {
	slice := lay.HyperSlice(k, coords)
	idx := dist.IndexIn(slice, rank)
	blo, bhi := lay.FactorRowRange(k, coords[k])
	lo, hi := grid.Part(bhi-blo, len(slice), idx)
	return blo + lo, blo + hi
}

// stackRows reassembles row blocks gathered from a hyperslice into the
// block-row matrix (rows x cols).
func stackRows(blocks [][]float64, rows, cols int) *tensor.Matrix {
	out := tensor.NewMatrix(rows, cols)
	at := 0
	for _, b := range blocks {
		br := len(b) / cols
		if br == 0 {
			continue
		}
		out.SetBlock(at, 0, tensor.NewMatrixFromData(b, br, cols))
		at += br
	}
	return out
}

// embedPartial places a local partial projection (whose mode-k extent
// is the local block's S_pk) into a zero tensor with full I_k extent,
// ready for a global All-Reduce.
func embedPartial(z *tensor.Dense, k, Ik int, lay dist.Stationary, coords []int) *tensor.Dense {
	dims := z.Dims()
	outDims := append([]int(nil), dims...)
	outDims[k] = Ik
	out := tensor.NewDense(outDims...)
	rlo, _ := lay.FactorRowRange(k, coords[k])
	// Destination strides.
	strides := make([]int, len(outDims))
	acc := 1
	for j, d := range outDims {
		strides[j] = acc
		acc *= d
	}
	idx := make([]int, len(dims))
	outData := out.Data()
	for off := 0; off < z.Elems(); off++ {
		dst := 0
		for j := range dims {
			v := idx[j]
			if j == k {
				v += rlo
			}
			dst += v * strides[j]
		}
		outData[dst] = z.Data()[off]
		incIdx(idx, dims)
	}
	return out
}

func incIdx(idx, dims []int) {
	for k := range idx {
		idx[k]++
		if idx[k] < dims[k] {
			return
		}
		idx[k] = 0
	}
}

func mustReplicated(replicated []*tensor.Matrix, j int) *tensor.Matrix {
	if replicated == nil || replicated[j] == nil {
		panic("tucker: replicated factor missing (internal invariant)")
	}
	return replicated[j]
}
