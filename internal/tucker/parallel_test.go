package tucker

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestParallelMatchesSequentialTrace(t *testing.T) {
	dims := []int{8, 8, 8}
	ranks := []int{2, 3, 2}
	x := tensor.RandomDense(81, dims...)
	init, err := InitFactors(dims, ranks, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Ranks: ranks, MaxIters: 6, Tol: 0, Init: init}
	_, seqTrace, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := DecomposeParallel(x, []int{2, 2, 2}, Options{Ranks: ranks, MaxIters: 6, Tol: 0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Trace) != len(seqTrace) {
		t.Fatalf("trace lengths %d vs %d", len(par.Trace), len(seqTrace))
	}
	for i := range seqTrace {
		if math.Abs(par.Trace[i].Fit-seqTrace[i].Fit) > 1e-8 {
			t.Fatalf("sweep %d: parallel fit %v vs sequential %v",
				i, par.Trace[i].Fit, seqTrace[i].Fit)
		}
	}
}

func TestParallelRecoversExactMultilinearRank(t *testing.T) {
	dims := []int{8, 8, 8}
	ranks := []int{2, 2, 2}
	x := lowMultilinear(t, dims, ranks, 83)
	res, err := DecomposeParallel(x, []int{2, 2, 2}, Options{Ranks: ranks, MaxIters: 20}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Fit < 0.9999 {
		t.Fatalf("parallel fit %v on exact low-rank data", res.Model.Fit)
	}
	rec := res.Model.Reconstruct()
	if rec.MaxAbsDiff(x) > 1e-5*x.Norm() {
		t.Fatalf("reconstruction error %v", rec.MaxAbsDiff(x))
	}
}

func TestParallelCommBreakdown(t *testing.T) {
	dims := []int{8, 8, 8}
	x := tensor.RandomDense(85, dims...)
	res, err := DecomposeParallel(x, []int{2, 2, 2}, Options{Ranks: []int{2, 2, 2}, MaxIters: 3, Tol: 0}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxGatherWords() <= 0 || res.MaxReduceWords() <= 0 {
		t.Fatalf("both phases should communicate: gather=%d reduce=%d",
			res.MaxGatherWords(), res.MaxReduceWords())
	}
}

func TestParallelSingleProc(t *testing.T) {
	dims := []int{6, 6}
	x := tensor.RandomDense(87, dims...)
	res, err := DecomposeParallel(x, []int{1, 1}, Options{Ranks: []int{2, 2}, MaxIters: 4, Tol: 0}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxGatherWords() != 0 || res.MaxReduceWords() != 0 {
		t.Fatal("P=1 should not communicate")
	}
	init, err := InitFactors(dims, []int{2, 2}, 13)
	if err != nil {
		t.Fatal(err)
	}
	_, seqTrace, err := Decompose(x, Options{Ranks: []int{2, 2}, MaxIters: 4, Tol: 0, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqTrace {
		if math.Abs(res.Trace[i].Fit-seqTrace[i].Fit) > 1e-10 {
			t.Fatalf("P=1 parallel differs from sequential at sweep %d", i)
		}
	}
}

func TestParallelErrors(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	if _, err := DecomposeParallel(x, []int{2}, Options{Ranks: []int{2, 2}}, 1); err == nil {
		t.Fatal("shape length mismatch should error")
	}
	if _, err := DecomposeParallel(x, []int{4, 2}, Options{Ranks: []int{2, 2}}, 1); err == nil {
		t.Fatal("P > min dim should error")
	}
	if _, err := DecomposeParallel(x, []int{2, 2}, Options{Ranks: []int{2}}, 1); err == nil {
		t.Fatal("rank count mismatch should error")
	}
	if _, err := DecomposeParallel(x, []int{2, 2}, Options{Ranks: []int{9, 2}}, 1); err == nil {
		t.Fatal("rank > extent should error")
	}
	if _, err := DecomposeParallel(x, []int{2, 2}, Options{Ranks: []int{2, 2}, MaxIters: -1}, 1); err == nil {
		t.Fatal("negative MaxIters should error")
	}
}

func TestSequentialInitOptionErrors(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	if _, _, err := Decompose(x, Options{Ranks: []int{2, 2}, Init: []*tensor.Matrix{nil, nil}}); err == nil {
		t.Fatal("nil init factors should error")
	}
	if _, _, err := Decompose(x, Options{Ranks: []int{2, 2}, Init: []*tensor.Matrix{tensor.NewMatrix(4, 2)}}); err == nil {
		t.Fatal("init length mismatch should error")
	}
}
