// Package tucker computes Tucker decompositions by HOSVD and HOOI
// (higher-order orthogonal iteration) on the TTM substrate — the
// second decomposition family the paper names (Section I) and the one
// its conclusion extends the lower-bound machinery toward. A Tucker
// model is a small core G and per-mode orthonormal factors U_k with
//
//	X ~ G x_1 U_1 x_2 U_2 ... x_N U_N.
//
// Both solvers run on the blocked TTM engine (internal/ttm): HOOI's
// projection chains and mode Grams are GEMM over contiguous slabs
// with a reused workspace, so steady-state sweeps allocate nothing
// outside the eigensolves.
package tucker

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// Options configures a Tucker decomposition.
type Options struct {
	Ranks    []int   // multilinear ranks, one per mode
	MaxIters int     // HOOI sweeps (default 25; 0 sweeps = plain HOSVD)
	Tol      float64 // stop when fit improves by less than Tol (default 1e-8)

	// Workers is the TTM engine's worker count for chains and Grams
	// (<= 0 selects the linalg default). Results are bitwise identical
	// for every worker count.
	Workers int

	// Init provides explicit initial factors (orthonormal columns,
	// I_k x Ranks[k]) instead of the HOSVD initialization. Used by the
	// distributed solver and its parity tests.
	Init []*tensor.Matrix
}

// Model is a computed Tucker decomposition.
type Model struct {
	Core    *tensor.Dense    // R_1 x ... x R_N
	Factors []*tensor.Matrix // U_k: I_k x R_k, orthonormal columns
	Fit     float64          // 1 - ||X - Xhat|| / ||X||
}

// TraceEntry records one HOOI sweep.
type TraceEntry struct {
	Iter int
	Fit  float64
}

// Reconstruct materializes X-hat = G x_1 U_1 ... x_N U_N.
func (m *Model) Reconstruct() *tensor.Dense {
	out := m.Core
	for k, u := range m.Factors {
		// Expanding R_k back to I_k contracts mode k against U's
		// columns; the transposed-TTM variant does that directly, so no
		// transpose of U is ever materialized.
		out = ttm.TTMT(out, u, k)
	}
	return out
}

// Decompose runs HOSVD initialization followed by HOOI sweeps.
func Decompose(x *tensor.Dense, opts Options) (*Model, []TraceEntry, error) {
	N := x.Order()
	if len(opts.Ranks) != N {
		return nil, nil, fmt.Errorf("tucker: %d ranks for order-%d tensor", len(opts.Ranks), N)
	}
	for k, r := range opts.Ranks {
		if r < 1 || r > x.Dim(k) {
			return nil, nil, fmt.Errorf("tucker: rank %d invalid for mode %d (extent %d)", r, k, x.Dim(k))
		}
	}
	if opts.MaxIters < 0 {
		return nil, nil, fmt.Errorf("tucker: MaxIters %d", opts.MaxIters)
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 25
	}
	if opts.Tol == 0 { //repro:bitwise unset-option sentinel, exact
		opts.Tol = 1e-8
	}
	normX := x.Norm()
	if normX == 0 { //repro:bitwise zero-tensor guard: norm is exactly 0 iff all entries are 0
		return nil, nil, fmt.Errorf("tucker: zero tensor")
	}
	w := opts.Workers
	ws := ttm.GetWorkspace()
	defer ttm.PutWorkspace(ws)

	// Initialize: explicit factors if given, else HOSVD
	// (U_k = leading eigenvectors of the mode-k Gram X_(k) X_(k)^T,
	// formed by the engine without materializing the unfolding).
	factors := make([]*tensor.Matrix, N)
	if opts.Init != nil {
		if len(opts.Init) != N {
			return nil, nil, fmt.Errorf("tucker: %d init factors for order-%d tensor", len(opts.Init), N)
		}
		for k, u := range opts.Init {
			if u == nil || u.Rows() != x.Dim(k) || u.Cols() != opts.Ranks[k] {
				return nil, nil, fmt.Errorf("tucker: init factor %d has wrong shape", k)
			}
			factors[k] = u.Clone()
		}
	} else {
		for k := 0; k < N; k++ {
			gram := tensor.NewMatrix(x.Dim(k), x.Dim(k))
			ttm.GramInto(gram, x, k, w, ws)
			u, err := linalg.LeadingEigvecs(gram, opts.Ranks[k])
			if err != nil {
				return nil, nil, fmt.Errorf("tucker: HOSVD mode %d: %w", k, err)
			}
			factors[k] = u
		}
	}

	// Buffers reused across HOOI sweeps: the mode-k projection keeps
	// extent I_k on mode k and R_j elsewhere, so its shape is fixed for
	// the whole run; likewise the Gram operands and the core.
	// LeadingEigvecs clones its input, so overwriting each sweep is
	// safe.
	gramBuf := make([]*tensor.Matrix, N)
	yBuf := make([]*tensor.Dense, N)
	for k := 0; k < N; k++ {
		gramBuf[k] = tensor.NewMatrix(x.Dim(k), x.Dim(k))
		ydims := make([]int, N)
		for j := 0; j < N; j++ {
			if j == k {
				ydims[j] = x.Dim(j)
			} else {
				ydims[j] = opts.Ranks[j]
			}
		}
		yBuf[k] = tensor.NewDense(ydims...)
	}
	coreBuf := tensor.NewDense(opts.Ranks...)

	// HOOI sweeps.
	var trace []TraceEntry
	prevFit := math.Inf(-1)
	fit := 0.0
	for it := 0; it < opts.MaxIters; it++ {
		for k := 0; k < N; k++ {
			// Project all modes but k, then take leading eigenvectors
			// of the partial projection's mode-k Gram. ChainInto and
			// GramInto time themselves (PhaseTTMChain / PhaseGram).
			ttm.ChainInto(yBuf[k], x, factors, k, w, ws)
			ttm.GramInto(gramBuf[k], yBuf[k], k, w, ws)
			sspan := obs.Start(obs.PhaseSolve)
			u, err := linalg.LeadingEigvecs(gramBuf[k], opts.Ranks[k])
			sspan.Stop()
			if err != nil {
				return nil, nil, fmt.Errorf("tucker: HOOI mode %d: %w", k, err)
			}
			factors[k] = u
		}
		// With orthonormal factors, ||Xhat|| = ||G||, so the fit comes
		// from the core alone.
		fspan := obs.Start(obs.PhaseFit)
		ttm.ChainInto(coreBuf, x, factors, -1, w, ws)
		fit = fitFromCore(normX, coreBuf)
		fspan.Stop()
		trace = append(trace, TraceEntry{Iter: it, Fit: fit})
		if fit-prevFit < opts.Tol && it > 0 {
			break
		}
		prevFit = fit
	}
	core := ttm.ChainWorkers(x, factors, -1, w)
	return &Model{Core: core, Factors: factors, Fit: fitFromCore(normX, core)}, trace, nil
}

// HOSVD returns the truncated HOSVD model without HOOI refinement.
func HOSVD(x *tensor.Dense, ranks []int) (*Model, error) {
	N := x.Order()
	if len(ranks) != N {
		return nil, fmt.Errorf("tucker: %d ranks for order-%d tensor", len(ranks), N)
	}
	normX := x.Norm()
	if normX == 0 { //repro:bitwise zero-tensor guard: norm is exactly 0 iff all entries are 0
		return nil, fmt.Errorf("tucker: zero tensor")
	}
	ws := ttm.GetWorkspace()
	defer ttm.PutWorkspace(ws)
	factors := make([]*tensor.Matrix, N)
	for k := 0; k < N; k++ {
		if ranks[k] < 1 || ranks[k] > x.Dim(k) {
			return nil, fmt.Errorf("tucker: rank %d invalid for mode %d", ranks[k], k)
		}
		gram := tensor.NewMatrix(x.Dim(k), x.Dim(k))
		ttm.GramInto(gram, x, k, 0, ws)
		u, err := linalg.LeadingEigvecs(gram, ranks[k])
		if err != nil {
			return nil, err
		}
		factors[k] = u
	}
	core := ttm.Chain(x, factors, -1)
	return &Model{Core: core, Factors: factors, Fit: fitFromCore(normX, core)}, nil
}

// fitFromCore uses ||X - Xhat||^2 = ||X||^2 - ||G||^2, valid for
// orthonormal factor matrices.
func fitFromCore(normX float64, core *tensor.Dense) float64 {
	resid2 := normX*normX - core.Norm()*core.Norm()
	if resid2 < 0 {
		resid2 = 0
	}
	return 1 - math.Sqrt(resid2)/normX
}
