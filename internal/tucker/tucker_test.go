package tucker

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/tensor"
	"repro/internal/ttm"
)

// lowMultilinear builds a tensor of exact multilinear rank `ranks`
// from a random core and random orthonormal factors.
func lowMultilinear(t *testing.T, dims, ranks []int, seed int64) *tensor.Dense {
	t.Helper()
	core := tensor.RandomDense(seed, ranks...)
	out := core
	for k := range dims {
		raw := tensor.RandomMatrix(seed+int64(k)+1, dims[k], ranks[k])
		q, _, err := linalg.QR(raw)
		if err != nil {
			t.Fatal(err)
		}
		out = ttm.TTM(out, linalg.Transpose(q), k)
	}
	return out
}

func TestHOOIRecoversExactMultilinearRank(t *testing.T) {
	dims := []int{6, 7, 5}
	ranks := []int{2, 3, 2}
	x := lowMultilinear(t, dims, ranks, 11)
	model, trace, err := Decompose(x, Options{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit < 0.99999 {
		t.Fatalf("fit = %v on exact low-rank data", model.Fit)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	rec := model.Reconstruct()
	if rec.MaxAbsDiff(x) > 1e-6*x.Norm() {
		t.Fatalf("reconstruction error %v", rec.MaxAbsDiff(x))
	}
}

func TestHOOIFitMonotone(t *testing.T) {
	x := tensor.RandomDense(13, 6, 6, 6)
	_, trace, err := Decompose(x, Options{Ranks: []int{3, 3, 3}, MaxIters: 15, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Fit < trace[i-1].Fit-1e-9 {
			t.Fatalf("fit decreased at sweep %d", i)
		}
	}
}

func TestHOOIAtLeastHOSVD(t *testing.T) {
	x := tensor.RandomDense(17, 7, 6, 5)
	ranks := []int{3, 2, 2}
	hosvd, err := HOSVD(x, ranks)
	if err != nil {
		t.Fatal(err)
	}
	hooi, _, err := Decompose(x, Options{Ranks: ranks, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if hooi.Fit < hosvd.Fit-1e-9 {
		t.Fatalf("HOOI fit %v below HOSVD fit %v", hooi.Fit, hosvd.Fit)
	}
}

func TestFactorsOrthonormal(t *testing.T) {
	x := tensor.RandomDense(19, 5, 5, 5)
	model, _, err := Decompose(x, Options{Ranks: []int{2, 2, 2}, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k, u := range model.Factors {
		if !linalg.Gram(u).EqualApprox(linalg.Identity(2), 1e-8) {
			t.Fatalf("factor %d not orthonormal", k)
		}
	}
	// Core shape.
	cd := model.Core.Dims()
	if cd[0] != 2 || cd[1] != 2 || cd[2] != 2 {
		t.Fatalf("core dims %v", cd)
	}
}

func TestFullRanksGiveExactFit(t *testing.T) {
	x := tensor.RandomDense(23, 4, 3, 4)
	model, err := HOSVD(x, []int{4, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit < 1-1e-9 {
		t.Fatalf("full-rank Tucker fit = %v, want ~1", model.Fit)
	}
	rec := model.Reconstruct()
	if !rec.EqualApprox(x, 1e-7) {
		t.Fatal("full-rank reconstruction differs")
	}
}

func TestMatrixCaseIsTruncatedSVD(t *testing.T) {
	// N=2 Tucker with ranks (r, r) is a rank-r SVD approximation; the
	// fit from the core must match the optimal rank-r spectral sum.
	x := tensor.RandomDense(29, 8, 6)
	model, err := HOSVD(x, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal rank-2 energy: top-2 eigenvalues of X X^T.
	xk := tensor.Unfold(x, 0)
	vals, _, err := linalg.SymEig(linalg.MatMulTransB(xk, xk))
	if err != nil {
		t.Fatal(err)
	}
	bestEnergy := vals[0] + vals[1]
	coreEnergy := model.Core.Norm() * model.Core.Norm()
	if coreEnergy > bestEnergy+1e-8 {
		t.Fatalf("core energy %v exceeds spectral optimum %v", coreEnergy, bestEnergy)
	}
	if coreEnergy < 0.98*bestEnergy {
		t.Fatalf("core energy %v far below spectral optimum %v", coreEnergy, bestEnergy)
	}
}

func TestErrors(t *testing.T) {
	x := tensor.RandomDense(1, 4, 4)
	if _, _, err := Decompose(x, Options{Ranks: []int{2}}); err == nil {
		t.Fatal("rank count mismatch should error")
	}
	if _, _, err := Decompose(x, Options{Ranks: []int{5, 2}}); err == nil {
		t.Fatal("rank > extent should error")
	}
	if _, _, err := Decompose(x, Options{Ranks: []int{2, 2}, MaxIters: -1}); err == nil {
		t.Fatal("negative MaxIters should error")
	}
	if _, _, err := Decompose(tensor.NewDense(3, 3), Options{Ranks: []int{1, 1}}); err == nil {
		t.Fatal("zero tensor should error")
	}
	if _, err := HOSVD(x, []int{9, 9}); err == nil {
		t.Fatal("HOSVD bad ranks should error")
	}
	if _, err := HOSVD(x, []int{2}); err == nil {
		t.Fatal("HOSVD rank count mismatch should error")
	}
	if _, err := HOSVD(tensor.NewDense(2, 2), []int{1, 1}); err == nil {
		t.Fatal("HOSVD zero tensor should error")
	}
}

// TestHOOISweepBodyZeroAlloc guards the steady-state allocation
// contract Decompose documents: with the per-mode projection, Gram,
// and core buffers warmed, a full sweep's TTM work (everything except
// the eigensolves, which allocate their own factor matrices) touches
// the heap zero times.
func TestHOOISweepBodyZeroAlloc(t *testing.T) {
	dims := []int{12, 10, 8}
	ranks := []int{4, 3, 3}
	x := lowMultilinear(t, dims, ranks, 61)
	model, _, err := Decompose(x, Options{Ranks: ranks, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	ws := ttm.GetWorkspace()
	defer ttm.PutWorkspace(ws)
	N := len(dims)
	gramBuf := make([]*tensor.Matrix, N)
	yBuf := make([]*tensor.Dense, N)
	for k := 0; k < N; k++ {
		gramBuf[k] = tensor.NewMatrix(dims[k], dims[k])
		ydims := append([]int(nil), ranks...)
		ydims[k] = dims[k]
		yBuf[k] = tensor.NewDense(ydims...)
	}
	coreBuf := tensor.NewDense(ranks...)
	sweep := func() {
		for k := 0; k < N; k++ {
			ttm.ChainInto(yBuf[k], x, model.Factors, k, 1, ws)
			ttm.GramInto(gramBuf[k], yBuf[k], k, 1, ws)
		}
		ttm.ChainInto(coreBuf, x, model.Factors, -1, 1, ws)
	}
	sweep()                                                     // warm the workspace ping-pong buffers
	if allocs := testing.AllocsPerRun(10, sweep); allocs != 0 { //repro:bitwise exact allocation count
		t.Errorf("HOOI sweep body: %v allocs/op, want 0", allocs)
	}
}
