// Package workload generates the synthetic problem instances used by
// the experiment drivers and benchmarks. The paper evaluates on dense
// tensors with chosen shapes (no public datasets are involved), so
// deterministic synthetic generators reproduce its workloads exactly.
package workload

import (
	"fmt"

	"repro/internal/tensor"
)

// Spec describes a dense MTTKRP workload.
type Spec struct {
	Dims  []int
	R     int
	Seed  int64
	Noise float64 // if > 0, a rank-R ground truth plus uniform noise
}

// Instance is a materialized workload.
type Instance struct {
	Spec    Spec
	X       *tensor.Dense
	Factors []*tensor.Matrix // MTTKRP input factors
	Truth   []*tensor.Matrix // ground-truth factors when Noise > 0, else nil
}

// Generate materializes the workload deterministically from its seed.
func Generate(s Spec) (*Instance, error) {
	if len(s.Dims) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 modes, got %v", s.Dims)
	}
	if s.R < 1 {
		return nil, fmt.Errorf("workload: rank %d", s.R)
	}
	inst := &Instance{Spec: s}
	if s.Noise > 0 {
		inst.Truth = tensor.RandomFactors(s.Seed, s.Dims, s.R)
		inst.X = tensor.FromFactors(inst.Truth)
		tensor.AddNoise(inst.X, s.Seed+1, s.Noise)
	} else {
		inst.X = tensor.RandomDense(s.Seed, s.Dims...)
	}
	inst.Factors = tensor.RandomFactors(s.Seed+2, s.Dims, s.R)
	return inst, nil
}

// Cubical returns a Spec with N equal dimensions.
func Cubical(N, side, R int, seed int64) Spec {
	dims := make([]int, N)
	for i := range dims {
		dims[i] = side
	}
	return Spec{Dims: dims, R: R, Seed: seed}
}

// PowersOfTwo returns 2^lo, 2^(lo+1), ..., 2^hi — the sweep pattern of
// the paper's strong-scaling experiments.
func PowersOfTwo(lo, hi int) []int {
	if lo < 0 || hi < lo || hi > 62 {
		panic(fmt.Sprintf("workload: bad power range [%d, %d]", lo, hi))
	}
	out := make([]int, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}
