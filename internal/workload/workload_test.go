package workload

import (
	"testing"

	"repro/internal/tensor"
)

func TestGenerateRandom(t *testing.T) {
	inst, err := Generate(Spec{Dims: []int{4, 5}, R: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inst.X.Order() != 2 || inst.X.Dim(1) != 5 {
		t.Fatal("wrong tensor shape")
	}
	if len(inst.Factors) != 2 || inst.Factors[0].Cols() != 3 {
		t.Fatal("wrong factors")
	}
	if inst.Truth != nil {
		t.Fatal("no truth expected without noise")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Spec{Dims: []int{4, 4}, R: 2, Seed: 9})
	b, _ := Generate(Spec{Dims: []int{4, 4}, R: 2, Seed: 9})
	if !a.X.EqualApprox(b.X, 0) {
		t.Fatal("same seed must give same tensor")
	}
	c, _ := Generate(Spec{Dims: []int{4, 4}, R: 2, Seed: 10})
	if a.X.EqualApprox(c.X, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateNoisyLowRank(t *testing.T) {
	inst, err := Generate(Spec{Dims: []int{5, 5, 5}, R: 2, Seed: 3, Noise: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Truth == nil {
		t.Fatal("truth factors expected")
	}
	clean := tensor.FromFactors(inst.Truth)
	diff := inst.X.MaxAbsDiff(clean)
	if diff == 0 || diff > 0.01 {
		t.Fatalf("noise level off: %v", diff)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Dims: []int{4}, R: 2}); err == nil {
		t.Fatal("1 mode should error")
	}
	if _, err := Generate(Spec{Dims: []int{4, 4}, R: 0}); err == nil {
		t.Fatal("R=0 should error")
	}
}

func TestCubical(t *testing.T) {
	s := Cubical(3, 8, 4, 7)
	if len(s.Dims) != 3 || s.Dims[2] != 8 || s.R != 4 {
		t.Fatalf("Cubical = %+v", s)
	}
}

func TestPowersOfTwo(t *testing.T) {
	ps := PowersOfTwo(0, 4)
	want := []int{1, 2, 4, 8, 16}
	if len(ps) != len(want) {
		t.Fatalf("got %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("got %v", ps)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PowersOfTwo(5, 3)
}
