// Package repro is a Go reproduction of "Communication Lower Bounds
// for Matricized Tensor Times Khatri-Rao Product" (Ballard, Knight,
// Rouse; IPDPS 2018). It provides:
//
//   - dense N-way tensors and factor matrices;
//   - the MTTKRP kernel and the paper's communication-optimal
//     sequential (Algorithm 2) and parallel (Algorithms 3-4)
//     algorithms, instrumented on simulated machines that count every
//     word moved;
//   - the MTTKRP-via-matrix-multiplication baselines the paper argues
//     against;
//   - evaluators for every lower bound of Section IV;
//   - the cost models behind Figure 4; and
//   - CP-ALS, the application whose bottleneck MTTKRP is.
//
// This package is a facade over the internal implementation packages;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro

import (
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/cpals"
	"repro/internal/dimtree"
	"repro/internal/par"
	"repro/internal/pebble"
	"repro/internal/seq"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/ttm"
	"repro/internal/tucker"
)

// Dense is a dense N-way tensor in generalized column-major layout.
type Dense = tensor.Dense

// Matrix is a dense column-major matrix (factor matrices are I_k x R).
type Matrix = tensor.Matrix

// NewDense allocates a zero tensor with the given dimensions.
func NewDense(dims ...int) *Dense { return tensor.NewDense(dims...) }

// NewMatrix allocates a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// RandomDense returns a deterministic random tensor with entries in
// [-1, 1).
func RandomDense(seed int64, dims ...int) *Dense { return tensor.RandomDense(seed, dims...) }

// RandomFactors returns deterministic random factor matrices of shapes
// dims[k] x R.
func RandomFactors(seed int64, dims []int, R int) []*Matrix {
	return tensor.RandomFactors(seed, dims, R)
}

// FromFactors materializes the rank-R tensor defined by the factors.
func FromFactors(factors []*Matrix) *Dense { return tensor.FromFactors(factors) }

// MTTKRP computes B(n) directly (Definition 2.1) with no cost
// accounting. factors[n] is ignored and may be nil.
func MTTKRP(x *Dense, factors []*Matrix, n int) *Matrix {
	return core.MTTKRP(x, factors, n)
}

// MTTKRPParallel computes B(n) with the shared-memory parallel kernel
// (workers goroutines; 0 means GOMAXPROCS).
func MTTKRPParallel(x *Dense, factors []*Matrix, n, workers int) *Matrix {
	return seq.RefParallel(x, factors, n, workers)
}

// CPDecomposeTree runs CP-ALS with Phan-style prefix-partial reuse:
// identical sweeps to CPDecompose at a fraction of the arithmetic. The
// third return value is the total MTTKRP flops performed.
func CPDecomposeTree(x *Dense, opts CPOptions) (*CPModel, []CPTraceEntry, int64, error) {
	return cpals.DecomposeTree(x, opts)
}

// Sequential algorithm selection (Algorithms 1-2 and the baseline).
type (
	// SeqAlgorithm selects an instrumented sequential algorithm.
	SeqAlgorithm = core.SeqAlgorithm
	// SeqOptions configures SequentialMTTKRP.
	SeqOptions = core.SeqOptions
	// SeqResult is the output plus exact load/store counts.
	SeqResult = seq.Result
)

// Sequential algorithm identifiers.
const (
	SeqAuto      = core.SeqAuto
	SeqUnblocked = core.SeqUnblocked
	SeqBlocked   = core.SeqBlocked
	SeqViaMatmul = core.SeqViaMatmul
)

// SequentialMTTKRP runs an instrumented sequential MTTKRP on the
// two-level memory model with fast memory capacity opts.M.
func SequentialMTTKRP(x *Dense, factors []*Matrix, n int, opts SeqOptions) (*SeqResult, error) {
	return core.Sequential(x, factors, n, opts)
}

// Parallel algorithm selection (Algorithms 3-4 and the baseline).
type (
	// ParAlgorithm selects a parallel algorithm.
	ParAlgorithm = core.ParAlgorithm
	// ParOptions configures ParallelMTTKRP.
	ParOptions = core.ParOptions
	// ParResult is the reassembled output plus per-rank traffic.
	ParResult = par.Result
)

// Parallel algorithm identifiers.
const (
	ParAuto       = core.ParAuto
	ParStationary = core.ParStationary
	ParGeneral    = core.ParGeneral
	ParViaMatmul  = core.ParViaMatmul
)

// ParallelMTTKRP runs a parallel MTTKRP on the simulated
// distributed-memory machine, choosing a cost-minimizing processor
// grid unless one is given.
func ParallelMTTKRP(x *Dense, factors []*Matrix, n int, opts ParOptions) (*ParResult, error) {
	return core.Parallel(x, factors, n, opts)
}

// Problem describes an MTTKRP instance for bound evaluation.
type Problem = bounds.Problem

// Bounds collects the paper's lower bounds for one parameter set.
type Bounds = core.Bounds

// LowerBounds evaluates every Section IV bound with gamma = delta = 1.
func LowerBounds(dims []int, R int, M float64, P float64) Bounds {
	return core.AllBounds(dims, R, M, P)
}

// CP-ALS (the application).
type (
	// CPOptions configures a CP-ALS run.
	CPOptions = cpals.Options
	// CPModel is a computed CP decomposition.
	CPModel = cpals.Model
	// CPTraceEntry records one ALS sweep's fit.
	CPTraceEntry = cpals.TraceEntry
	// CPParallelResult is a distributed CP-ALS run with its
	// communication breakdown.
	CPParallelResult = cpals.ParallelResult
)

// CPDecompose runs sequential CP-ALS.
func CPDecompose(x *Dense, opts CPOptions) (*CPModel, []CPTraceEntry, error) {
	return cpals.Decompose(x, opts)
}

// CPDecomposeParallel runs distributed CP-ALS on an N-way processor
// grid.
func CPDecomposeParallel(x *Dense, shape []int, opts CPOptions) (*CPParallelResult, error) {
	return cpals.DecomposeParallel(x, shape, opts)
}

// MultiModeResult carries the all-modes MTTKRP outputs and the shared
// arithmetic cost of the dimension tree.
type MultiModeResult = dimtree.Result

// MTTKRPAllModes computes B(n) for every mode with one dimension-tree
// pass, sharing partial contractions across modes (the multi-MTTKRP
// optimization of the paper's Section VII). All factors must be
// non-nil.
func MTTKRPAllModes(x *Dense, factors []*Matrix) *MultiModeResult {
	return dimtree.AllModes(x, factors)
}

// CPGradOptions configures gradient-based CP fitting.
type CPGradOptions = cpals.GradOptions

// CPGradTraceEntry records one gradient-descent iteration.
type CPGradTraceEntry = cpals.GradTraceEntry

// CPDecomposeGradient fits a CP model by gradient descent with
// backtracking line search; every objective/gradient evaluation uses
// one shared dimension-tree MTTKRP pass.
func CPDecomposeGradient(x *Dense, opts CPGradOptions) (*CPModel, []CPGradTraceEntry, error) {
	return cpals.DecomposeGradient(x, opts)
}

// CPGradient returns the per-mode gradients of 0.5*||X - Xhat||^2, the
// objective value, and the shared-MTTKRP flop count.
func CPGradient(x *Dense, factors []*Matrix) ([]*Matrix, float64, int64) {
	return cpals.Gradient(x, factors)
}

// TTM returns the mode-k tensor-times-matrix product Y = X x_k U^T
// (mode k's extent becomes U's column count) — the Tucker kernel the
// paper's conclusion extends toward.
func TTM(x *Dense, u *Matrix, mode int) *Dense { return ttm.TTM(x, u, mode) }

// Tucker types re-exported for the Tucker/HOOI application.
type (
	// TuckerOptions configures TuckerDecompose.
	TuckerOptions = tucker.Options
	// TuckerModel is a core plus orthonormal factors.
	TuckerModel = tucker.Model
	// TuckerTraceEntry records one HOOI sweep.
	TuckerTraceEntry = tucker.TraceEntry
)

// TuckerDecompose runs HOSVD + HOOI for the given multilinear ranks.
func TuckerDecompose(x *Dense, opts TuckerOptions) (*TuckerModel, []TuckerTraceEntry, error) {
	return tucker.Decompose(x, opts)
}

// TuckerParallelResult is a distributed HOOI run with its
// communication breakdown (factor gathers vs projection reduces).
type TuckerParallelResult = tucker.ParallelResult

// TuckerDecomposeParallel runs distributed HOOI on an N-way processor
// grid of the simulated machine, with the stationary-tensor layout.
func TuckerDecomposeParallel(x *Dense, shape []int, opts TuckerOptions, seed int64) (*TuckerParallelResult, error) {
	return tucker.DecomposeParallel(x, shape, opts, seed)
}

// OptimalScheduleWords computes, by exhaustive state search, the exact
// minimum loads+stores over all executions of a tiny MTTKRP on a
// machine with M words of fast memory — the strongest validation of
// Theorem 4.1 (see internal/pebble). Instances must be tiny; the
// search errors out beyond its state budget.
func OptimalScheduleWords(dims []int, R, mode, M int, maxStates int) (int64, error) {
	return pebble.Optimal(pebble.Instance{Dims: dims, R: R, N: mode, M: M}, maxStates)
}

// Sparse-tensor types re-exported for the sparse MTTKRP extension.
type (
	// SparseCOO is a sparse tensor in coordinate format.
	SparseCOO = sparse.COO
	// SparsePartition assigns nonzeros to owner-computes parts.
	SparsePartition = sparse.Partition
)

// RandomSparse generates a sparse tensor with nnz distinct nonzeros.
func RandomSparse(seed int64, nnz int, dims ...int) *SparseCOO {
	return sparse.Random(seed, nnz, dims...)
}

// SparseMTTKRP computes the mode-n MTTKRP of a sparse tensor.
func SparseMTTKRP(x *SparseCOO, factors []*Matrix, n int) *Matrix {
	return sparse.MTTKRP(x, factors, n)
}

// SparseCommVolume returns the hypergraph (lambda-1) communication
// volume of a nonzero partition — the quantity the paper's sparse
// future-work direction minimizes.
func SparseCommVolume(x *SparseCOO, part SparsePartition, n, R int) int64 {
	return sparse.CommVolume(x, part, n, R)
}

// Fig4Row is one point of the regenerated Figure 4.
type Fig4Row = costmodel.Fig4Row

// Fig4 regenerates the paper's Figure 4 series for P = 2^0..2^maxExp.
func Fig4(maxExp int) []Fig4Row { return costmodel.Fig4Series(maxExp) }
