package repro

import (
	"testing"
)

func TestFacadeMTTKRP(t *testing.T) {
	dims := []int{6, 5, 4}
	x := RandomDense(1, dims...)
	fs := RandomFactors(2, dims, 3)
	b := MTTKRP(x, fs, 0)
	if b.Rows() != 6 || b.Cols() != 3 {
		t.Fatalf("B shape %dx%d", b.Rows(), b.Cols())
	}
}

func TestFacadeSequential(t *testing.T) {
	dims := []int{6, 6, 6}
	x := RandomDense(3, dims...)
	fs := RandomFactors(4, dims, 2)
	res, err := SequentialMTTKRP(x, fs, 1, SeqOptions{M: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !res.B.EqualApprox(MTTKRP(x, fs, 1), 1e-9) {
		t.Fatal("facade sequential result wrong")
	}
	if res.Counts.Words() <= 0 {
		t.Fatal("no words counted")
	}
}

func TestFacadeParallel(t *testing.T) {
	dims := []int{8, 8, 8}
	x := RandomDense(5, dims...)
	fs := RandomFactors(6, dims, 4)
	res, err := ParallelMTTKRP(x, fs, 2, ParOptions{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.B.EqualApprox(MTTKRP(x, fs, 2), 1e-9) {
		t.Fatal("facade parallel result wrong")
	}
	if res.MaxWords() <= 0 {
		t.Fatal("expected communication at P=8")
	}
}

func TestFacadeBounds(t *testing.T) {
	b := LowerBounds([]int{16, 16, 16}, 8, 128, 8)
	if b.SeqMemDependent <= 0 {
		t.Fatalf("bounds: %+v", b)
	}
}

func TestFacadeCPALS(t *testing.T) {
	dims := []int{6, 6, 6}
	truth := RandomFactors(7, dims, 2)
	x := FromFactors(truth)
	model, trace, err := CPDecompose(x, CPOptions{R: 2, MaxIters: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit < 0.99 || len(trace) == 0 {
		t.Fatalf("fit %v", model.Fit)
	}
}

func TestFacadeCPALSParallel(t *testing.T) {
	dims := []int{8, 8, 8}
	x := RandomDense(11, dims...)
	res, err := CPDecomposeParallel(x, []int{2, 2, 2}, CPOptions{R: 2, MaxIters: 3, Tol: 0, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMTTKRPWords() <= 0 {
		t.Fatal("no MTTKRP communication recorded")
	}
}

func TestFacadeFig4(t *testing.T) {
	rows := Fig4(10)
	if len(rows) != 11 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[10].Stationary >= rows[10].Matmul {
		t.Fatal("at P=2^10 the stationary algorithm should win")
	}
}

func TestFacadeConstructors(t *testing.T) {
	x := NewDense(2, 3)
	if x.Elems() != 6 {
		t.Fatal("NewDense")
	}
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("NewMatrix")
	}
}

func TestFacadeAllModes(t *testing.T) {
	dims := []int{5, 4, 5}
	x := RandomDense(15, dims...)
	fs := RandomFactors(16, dims, 3)
	res := MTTKRPAllModes(x, fs)
	for n := range dims {
		if !res.B[n].EqualApprox(MTTKRP(x, fs, n), 1e-9) {
			t.Fatalf("mode %d mismatch", n)
		}
	}
	if res.Flops <= 0 {
		t.Fatal("flops not counted")
	}
}

func TestFacadeGradient(t *testing.T) {
	dims := []int{5, 5, 5}
	truth := RandomFactors(17, dims, 2)
	x := FromFactors(truth)
	grads, f, flops := CPGradient(x, truth)
	if len(grads) != 3 || flops <= 0 {
		t.Fatal("gradient output malformed")
	}
	if f > 1e-10 {
		t.Fatalf("objective at the exact solution should be ~0, got %v", f)
	}
	model, trace, err := CPDecomposeGradient(x, CPGradOptions{R: 2, MaxIters: 20, Seed: 18})
	if err != nil || len(trace) == 0 {
		t.Fatalf("gradient descent failed: %v", err)
	}
	if model.Fit < 0 {
		t.Fatal("nonsense fit")
	}
}

func TestFacadeTucker(t *testing.T) {
	x := RandomDense(19, 8, 8, 8)
	model, trace, err := TuckerDecompose(x, TuckerOptions{Ranks: []int{3, 3, 3}, MaxIters: 3, Tol: 0})
	if err != nil || len(trace) != 3 {
		t.Fatalf("tucker: %v (trace %d)", err, len(trace))
	}
	if model.Core.Dims()[0] != 3 {
		t.Fatal("core shape")
	}
	par, err := TuckerDecomposeParallel(x, []int{2, 2, 2}, TuckerOptions{Ranks: []int{3, 3, 3}, MaxIters: 3, Tol: 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if par.MaxGatherWords() <= 0 {
		t.Fatal("no gather communication recorded")
	}
}

func TestFacadeTTM(t *testing.T) {
	x := RandomDense(21, 4, 5)
	u := RandomFactors(22, []int{4}, 2)[0]
	y := TTM(x, u, 0)
	if y.Dim(0) != 2 || y.Dim(1) != 5 {
		t.Fatalf("TTM shape %v", y.Dims())
	}
}

func TestFacadeSparse(t *testing.T) {
	dims := []int{6, 6, 6}
	s := RandomSparse(23, 30, dims...)
	fs := RandomFactors(24, dims, 2)
	b := SparseMTTKRP(s, fs, 0)
	if b.Rows() != 6 || b.Cols() != 2 {
		t.Fatal("sparse MTTKRP shape")
	}
	// Volume of the trivial single-part partition is zero.
	part := SparsePartition{P: 1, Assign: make([]int, s.NNZ())}
	if SparseCommVolume(s, part, 0, 2) != 0 {
		t.Fatal("single-part volume should be 0")
	}
}

func TestFacadeOptimalSchedule(t *testing.T) {
	opt, err := OptimalScheduleWords([]int{1, 1}, 1, 0, 3, 100000)
	if err != nil || opt != 3 {
		t.Fatalf("opt = %d, err = %v; want 3", opt, err)
	}
}
